#include "io/real.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.hpp"

namespace rcgp::io {

unsigned RealCircuit::num_real_inputs() const {
  unsigned n = 0;
  for (unsigned i = 0; i < num_lines; ++i) {
    if (constants.empty() || constants[i] == '-') {
      ++n;
    }
  }
  return n;
}

unsigned RealCircuit::num_real_outputs() const {
  unsigned n = 0;
  for (unsigned i = 0; i < num_lines; ++i) {
    if (garbage.empty() || garbage[i] == '-') {
      ++n;
    }
  }
  return n;
}

std::uint64_t RealCircuit::apply(std::uint64_t lines) const {
  for (const auto& gate : gates) {
    bool active = true;
    for (std::size_t c = 0; c < gate.controls.size(); ++c) {
      const bool v = (lines >> gate.controls[c]) & 1;
      if (v == gate.negated[c]) {
        active = false;
        break;
      }
    }
    switch (gate.kind) {
      case RealGate::Kind::kToffoli:
        if (active) {
          lines ^= std::uint64_t{1} << gate.targets[0];
        }
        break;
      case RealGate::Kind::kFredkin:
        if (active) {
          const bool a = (lines >> gate.targets[0]) & 1;
          const bool b = (lines >> gate.targets[1]) & 1;
          if (a != b) {
            lines ^= (std::uint64_t{1} << gate.targets[0]) |
                     (std::uint64_t{1} << gate.targets[1]);
          }
        }
        break;
      case RealGate::Kind::kPeres:
      case RealGate::Kind::kInversePeres: {
        // Peres(a,b,c): a'=a, b'=a^b, c'=ab^c. In .real, p3 a b c lists
        // the two "targets" last; we store (a) in controls, (b,c) in
        // targets. The inverse applies the operations in reverse.
        const unsigned a = gate.controls.empty() ? gate.targets[0]
                                                 : gate.controls[0];
        const unsigned b = gate.targets[gate.targets.size() - 2];
        const unsigned c = gate.targets.back();
        const bool va = (lines >> a) & 1;
        const bool vb = (lines >> b) & 1;
        if (gate.kind == RealGate::Kind::kPeres) {
          if (va && vb) {
            lines ^= std::uint64_t{1} << c;
          }
          if (va) {
            lines ^= std::uint64_t{1} << b;
          }
        } else {
          if (va) {
            lines ^= std::uint64_t{1} << b;
          }
          const bool vb2 = (lines >> b) & 1;
          if (va && vb2) {
            lines ^= std::uint64_t{1} << c;
          }
        }
        break;
      }
    }
  }
  return lines;
}

std::vector<tt::TruthTable> RealCircuit::to_tables() const {
  const unsigned ni = num_real_inputs();
  if (ni > tt::TruthTable::kMaxVars) {
    throw std::runtime_error("real: too many inputs to tabulate");
  }
  std::vector<unsigned> input_lines;
  for (unsigned i = 0; i < num_lines; ++i) {
    if (constants.empty() || constants[i] == '-') {
      input_lines.push_back(i);
    }
  }
  std::vector<unsigned> output_lines;
  for (unsigned i = 0; i < num_lines; ++i) {
    if (garbage.empty() || garbage[i] == '-') {
      output_lines.push_back(i);
    }
  }
  std::vector<tt::TruthTable> tables(output_lines.size(),
                                     tt::TruthTable(ni));
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << ni); ++x) {
    std::uint64_t lines = 0;
    for (unsigned i = 0; i < num_lines; ++i) {
      if (!constants.empty() && constants[i] == '1') {
        lines |= std::uint64_t{1} << i;
      }
    }
    for (unsigned k = 0; k < ni; ++k) {
      if ((x >> k) & 1) {
        lines |= std::uint64_t{1} << input_lines[k];
      }
    }
    const std::uint64_t result = apply(lines);
    for (std::size_t o = 0; o < output_lines.size(); ++o) {
      if ((result >> output_lines[o]) & 1) {
        tables[o].set_bit(x, true);
      }
    }
  }
  return tables;
}

RealCircuit parse_real(std::istream& in, const std::string& source) {
  RealCircuit circuit;
  std::map<std::string, unsigned> line_of;
  std::string line;
  std::size_t lineno = 0;
  bool in_body = false;
  const auto fail = [&](const std::string& message) {
    fail_parse("real", source, lineno, message);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) {
      continue;
    }
    if (head == ".version") {
      continue;
    }
    if (head == ".numvars") {
      if (!(ls >> circuit.num_lines)) {
        fail("malformed .numvars line (expected a line count)");
      }
      // Lines are bit positions in the 64-bit assignment words of
      // RealCircuit::apply; wider cascades would shift out of range.
      if (circuit.num_lines > 64) {
        fail(".numvars exceeds the supported maximum of 64 lines");
      }
      continue;
    }
    if (head == ".variables") {
      std::string name;
      while (ls >> name) {
        line_of[name] = static_cast<unsigned>(circuit.variable_names.size());
        circuit.variable_names.push_back(name);
      }
      continue;
    }
    if (head == ".inputs" || head == ".outputs") {
      continue; // display names only
    }
    if (head == ".constants") {
      ls >> circuit.constants;
      continue;
    }
    if (head == ".garbage") {
      ls >> circuit.garbage;
      continue;
    }
    if (head == ".begin") {
      in_body = true;
      continue;
    }
    if (head == ".end") {
      break;
    }
    if (head[0] == '.') {
      fail("unsupported directive " + head);
    }
    if (!in_body) {
      fail("gate before .begin");
    }
    // Gate line: kind = letter + line count, e.g. "t3 a b c", "f3 a b c".
    RealGate gate;
    const char kind_char = head[0];
    std::vector<unsigned> lines_used;
    std::vector<bool> neg;
    std::string tok;
    while (ls >> tok) {
      bool negative = false;
      if (tok[0] == '-') {
        negative = true;
        tok = tok.substr(1);
      }
      const auto it = line_of.find(tok);
      if (it == line_of.end()) {
        fail("unknown line " + tok);
      }
      lines_used.push_back(it->second);
      neg.push_back(negative);
    }
    if (lines_used.empty()) {
      fail("gate with no lines");
    }
    switch (kind_char) {
      case 't': { // multiple-control Toffoli: last line is the target
        gate.kind = RealGate::Kind::kToffoli;
        gate.targets = {lines_used.back()};
        gate.controls.assign(lines_used.begin(), lines_used.end() - 1);
        gate.negated.assign(neg.begin(), neg.end() - 1);
        break;
      }
      case 'f': { // multiple-control Fredkin: last two lines swap
        if (lines_used.size() < 2) {
          fail("fredkin needs two targets");
        }
        gate.kind = RealGate::Kind::kFredkin;
        gate.targets = {lines_used[lines_used.size() - 2],
                        lines_used.back()};
        gate.controls.assign(lines_used.begin(), lines_used.end() - 2);
        gate.negated.assign(neg.begin(), neg.end() - 2);
        break;
      }
      case 'p':
      case 'q': { // Peres / inverse Peres on three lines
        if (lines_used.size() != 3) {
          fail("peres needs three lines");
        }
        gate.kind = kind_char == 'p' ? RealGate::Kind::kPeres
                                     : RealGate::Kind::kInversePeres;
        gate.controls = {lines_used[0]};
        gate.negated = {false};
        gate.targets = {lines_used[1], lines_used[2]};
        break;
      }
      default:
        fail("unsupported gate kind " + head);
    }
    circuit.gates.push_back(std::move(gate));
  }
  if (circuit.num_lines == 0) {
    circuit.num_lines = static_cast<unsigned>(circuit.variable_names.size());
  }
  if (circuit.num_lines > 64) {
    fail_parse("real", source, 0,
               "circuit exceeds the supported maximum of 64 lines");
  }
  if (circuit.variable_names.size() != circuit.num_lines) {
    fail_parse("real", source, 0, ".numvars/.variables mismatch");
  }
  if (!circuit.constants.empty() &&
      circuit.constants.size() != circuit.num_lines) {
    fail_parse("real", source, 0, ".constants width mismatch");
  }
  if (!circuit.garbage.empty() &&
      circuit.garbage.size() != circuit.num_lines) {
    fail_parse("real", source, 0, ".garbage width mismatch");
  }
  return circuit;
}

void write_real(const RealCircuit& circuit, std::ostream& out) {
  out << ".version 2.0\n.numvars " << circuit.num_lines << "\n.variables";
  for (const auto& name : circuit.variable_names) {
    out << ' ' << name;
  }
  out << '\n';
  if (!circuit.constants.empty()) {
    out << ".constants " << circuit.constants << '\n';
  }
  if (!circuit.garbage.empty()) {
    out << ".garbage " << circuit.garbage << '\n';
  }
  out << ".begin\n";
  for (const auto& gate : circuit.gates) {
    std::size_t lines = gate.controls.size() + gate.targets.size();
    switch (gate.kind) {
      case RealGate::Kind::kToffoli: out << 't' << lines; break;
      case RealGate::Kind::kFredkin: out << 'f' << lines; break;
      case RealGate::Kind::kPeres: out << "p3"; break;
      case RealGate::Kind::kInversePeres: out << "q3"; break;
    }
    for (std::size_t c = 0; c < gate.controls.size(); ++c) {
      out << ' ' << (gate.negated[c] ? "-" : "")
          << circuit.variable_names[gate.controls[c]];
    }
    for (const unsigned t : gate.targets) {
      out << ' ' << circuit.variable_names[t];
    }
    out << '\n';
  }
  out << ".end\n";
}

std::string write_real_string(const RealCircuit& circuit) {
  std::ostringstream out;
  write_real(circuit, out);
  return out.str();
}

aig::Aig real_to_aig(const RealCircuit& circuit) {
  aig::Aig net;
  // Current signal on every line, in cascade order.
  std::vector<aig::Signal> line(circuit.num_lines, net.const0());
  for (unsigned i = 0; i < circuit.num_lines; ++i) {
    if (!circuit.constants.empty() && circuit.constants[i] != '-') {
      line[i] = circuit.constants[i] == '1' ? net.const1() : net.const0();
    } else {
      const std::string name = i < circuit.variable_names.size()
                                   ? circuit.variable_names[i]
                                   : "l" + std::to_string(i);
      line[i] = net.create_pi(name);
    }
  }
  auto control_product = [&](const RealGate& gate) {
    aig::Signal active = net.const1();
    for (std::size_t c = 0; c < gate.controls.size(); ++c) {
      const aig::Signal v = line[gate.controls[c]];
      active = net.create_and(active, gate.negated[c] ? !v : v);
    }
    return active;
  };
  for (const auto& gate : circuit.gates) {
    switch (gate.kind) {
      case RealGate::Kind::kToffoli: {
        const aig::Signal active = control_product(gate);
        line[gate.targets[0]] =
            net.create_xor(line[gate.targets[0]], active);
        break;
      }
      case RealGate::Kind::kFredkin: {
        const aig::Signal active = control_product(gate);
        const unsigned x = gate.targets[0];
        const unsigned y = gate.targets[1];
        const aig::Signal nx = net.create_mux(active, line[y], line[x]);
        const aig::Signal ny = net.create_mux(active, line[x], line[y]);
        line[x] = nx;
        line[y] = ny;
        break;
      }
      case RealGate::Kind::kPeres:
      case RealGate::Kind::kInversePeres: {
        const unsigned a = gate.controls.empty() ? gate.targets[0]
                                                 : gate.controls[0];
        const unsigned b = gate.targets[gate.targets.size() - 2];
        const unsigned c = gate.targets.back();
        if (gate.kind == RealGate::Kind::kPeres) {
          // c' = ab ^ c computed from the *pre-gate* b, then b' = a ^ b.
          line[c] = net.create_xor(line[c],
                                   net.create_and(line[a], line[b]));
          line[b] = net.create_xor(line[a], line[b]);
        } else {
          line[b] = net.create_xor(line[a], line[b]);
          line[c] = net.create_xor(line[c],
                                   net.create_and(line[a], line[b]));
        }
        break;
      }
    }
  }
  for (unsigned i = 0; i < circuit.num_lines; ++i) {
    if (circuit.garbage.empty() || circuit.garbage[i] == '-') {
      const std::string name = i < circuit.variable_names.size()
                                   ? circuit.variable_names[i]
                                   : "l" + std::to_string(i);
      net.add_po(line[i], name);
    }
  }
  return net.cleanup();
}

RealCircuit parse_real_string(const std::string& text) {
  std::istringstream in(text);
  return parse_real(in);
}

RealCircuit parse_real_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    fail_parse("real", path, 0, "cannot open file");
  }
  return parse_real(in, path);
}

} // namespace rcgp::io
