#include "io/aiger.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/parse_error.hpp"

namespace rcgp::io {

namespace {

/// Sanity cap on header counts: a corrupted header like `aag 9e18 0 0 0 0`
/// must fail fast instead of driving the literal-map allocation.
constexpr std::size_t kMaxAigerVars = std::size_t{1} << 24;

/// Index of a symbol-table tag ("i3" -> 3), or SIZE_MAX when the digits
/// are malformed/oversized — std::stoul would throw std::invalid_argument
/// or std::out_of_range here, which must not escape a parser.
std::size_t symbol_index(const std::string& tag) {
  if (tag.size() < 2 || tag.size() > 10) {
    return static_cast<std::size_t>(-1);
  }
  std::size_t index = 0;
  for (std::size_t k = 1; k < tag.size(); ++k) {
    if (tag[k] < '0' || tag[k] > '9') {
      return static_cast<std::size_t>(-1);
    }
    index = index * 10 + static_cast<std::size_t>(tag[k] - '0');
  }
  return index;
}

} // namespace

aig::Aig parse_aiger(std::istream& raw, const std::string& source) {
  LineCountingBuf buf(raw.rdbuf());
  std::istream in(&buf);
  auto fail = [&](const std::string& msg) {
    fail_parse("aiger", source, buf.line(), msg);
  };
  std::string magic;
  std::size_t m = 0;
  std::size_t i = 0;
  std::size_t l = 0;
  std::size_t o = 0;
  std::size_t a = 0;
  if (!(in >> magic >> m >> i >> l >> o >> a) || magic != "aag") {
    fail("expected ASCII header 'aag M I L O A'");
  }
  if (l != 0) {
    fail("latches unsupported (combinational only)");
  }
  if (m < i + a) {
    fail("inconsistent header counts");
  }
  if (m > kMaxAigerVars || o > kMaxAigerVars) {
    fail("header counts exceed sanity limit (" +
         std::to_string(kMaxAigerVars) + ")");
  }

  aig::Aig net;
  // AIGER literal -> our signal. Variable v occupies literals 2v, 2v+1;
  // variable 0 is constant false.
  std::vector<aig::Signal> var_sig(m + 1, net.const0());

  std::vector<std::size_t> input_lits(i);
  for (std::size_t k = 0; k < i; ++k) {
    if (!(in >> input_lits[k])) {
      fail("truncated input section");
    }
    if (input_lits[k] == 0 || input_lits[k] & 1 || input_lits[k] / 2 > m) {
      fail("invalid input literal " + std::to_string(input_lits[k]));
    }
    var_sig[input_lits[k] / 2] = net.create_pi();
  }
  std::vector<std::size_t> output_lits(o);
  for (std::size_t k = 0; k < o; ++k) {
    if (!(in >> output_lits[k]) || output_lits[k] / 2 > m) {
      fail("truncated/invalid output section");
    }
  }
  for (std::size_t k = 0; k < a; ++k) {
    std::size_t lhs = 0;
    std::size_t rhs0 = 0;
    std::size_t rhs1 = 0;
    if (!(in >> lhs >> rhs0 >> rhs1)) {
      fail("truncated AND section");
    }
    if (lhs & 1 || lhs / 2 > m || rhs0 >= lhs || rhs1 >= lhs) {
      fail("AND literals not in DAG order");
    }
    const aig::Signal s0 = var_sig[rhs0 / 2] ^ ((rhs0 & 1) != 0);
    const aig::Signal s1 = var_sig[rhs1 / 2] ^ ((rhs1 & 1) != 0);
    var_sig[lhs / 2] = net.create_and(s0, s1);
  }
  for (std::size_t k = 0; k < o; ++k) {
    const aig::Signal s =
        var_sig[output_lits[k] / 2] ^ ((output_lits[k] & 1) != 0);
    net.add_po(s);
  }

  // Symbol table (optional): iK name / oK name; stop at 'c' or EOF.
  std::string line;
  std::getline(in, line); // rest of the last AND line
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == 'c') {
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    std::string name;
    ls >> tag >> name;
    if (tag.size() < 2 || name.empty()) {
      continue;
    }
    const std::size_t index = symbol_index(tag);
    if (tag[0] == 'i' && index < i) {
      net.set_pi_name(static_cast<std::uint32_t>(index), name);
    } else if (tag[0] == 'o' && index < o) {
      net.set_po_name(static_cast<std::uint32_t>(index), name);
    }
  }
  return net;
}

aig::Aig parse_aiger_string(const std::string& text) {
  std::istringstream in(text);
  return parse_aiger(in);
}

aig::Aig parse_aiger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("aiger", path, 0, "cannot open file");
  }
  return parse_aiger(in, path);
}

void write_aiger(const aig::Aig& input, std::ostream& out) {
  const aig::Aig net = input.cleanup();
  // Assign AIGER variables: inputs first, then AND nodes in topo order.
  std::vector<std::size_t> var_of(net.num_nodes(), 0);
  std::size_t next_var = 1;
  for (std::uint32_t k = 0; k < net.num_pis(); ++k) {
    var_of[net.pi_at(k)] = next_var++;
  }
  std::size_t num_ands = 0;
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (net.is_and(n)) {
      var_of[n] = next_var++;
      ++num_ands;
    }
  }
  auto lit_of = [&](aig::Signal s) {
    return 2 * var_of[s.node()] + (s.complemented() ? 1 : 0);
  };

  out << "aag " << (next_var - 1) << ' ' << net.num_pis() << " 0 "
      << net.num_pos() << ' ' << num_ands << '\n';
  for (std::uint32_t k = 0; k < net.num_pis(); ++k) {
    out << 2 * var_of[net.pi_at(k)] << '\n';
  }
  for (std::uint32_t k = 0; k < net.num_pos(); ++k) {
    out << lit_of(net.po_at(k)) << '\n';
  }
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    out << 2 * var_of[n] << ' ' << lit_of(net.fanin0(n)) << ' '
        << lit_of(net.fanin1(n)) << '\n';
  }
  for (std::uint32_t k = 0; k < net.num_pis(); ++k) {
    out << 'i' << k << ' ' << net.pi_name(k) << '\n';
  }
  for (std::uint32_t k = 0; k < net.num_pos(); ++k) {
    out << 'o' << k << ' ' << net.po_name(k) << '\n';
  }
}

std::string write_aiger_string(const aig::Aig& net) {
  std::ostringstream out;
  write_aiger(net, out);
  return out.str();
}

namespace {

/// AIGER binary delta coding: non-negative integers in 7-bit groups,
/// continuation bit 0x80, least significant group first.
void put_delta(std::ostream& out, std::size_t delta) {
  while (delta >= 0x80) {
    out.put(static_cast<char>((delta & 0x7F) | 0x80));
    delta >>= 7;
  }
  out.put(static_cast<char>(delta));
}

} // namespace

aig::Aig parse_aiger_binary(std::istream& raw, const std::string& source) {
  LineCountingBuf buf(raw.rdbuf());
  std::istream in(&buf);
  // Binary AIGER is not line-oriented past the header, so errors carry the
  // byte offset of the failure instead of a line number.
  auto fail = [&](const std::string& msg) {
    fail_parse("aiger", source, 0,
               msg + " (byte " + std::to_string(buf.bytes()) + ")");
  };
  auto get_delta = [&]() {
    std::size_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const int byte = in.get();
      if (byte == EOF) {
        fail("truncated binary delta");
      }
      value |= static_cast<std::size_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) {
        return value;
      }
      shift += 7;
      if (shift > 63) {
        fail("oversized binary delta");
      }
    }
  };
  std::string magic;
  std::size_t m = 0;
  std::size_t i = 0;
  std::size_t l = 0;
  std::size_t o = 0;
  std::size_t a = 0;
  if (!(in >> magic >> m >> i >> l >> o >> a) || magic != "aig") {
    fail("expected binary header 'aig M I L O A'");
  }
  if (l != 0) {
    fail("latches unsupported (combinational only)");
  }
  if (m != i + a) {
    fail("binary header requires M = I + A");
  }
  if (m > kMaxAigerVars || o > kMaxAigerVars) {
    fail("header counts exceed sanity limit (" +
         std::to_string(kMaxAigerVars) + ")");
  }
  // Outputs follow as ASCII lines; then the binary AND section.
  std::vector<std::size_t> output_lits(o);
  for (std::size_t k = 0; k < o; ++k) {
    if (!(in >> output_lits[k]) || output_lits[k] > 2 * m + 1) {
      fail("invalid output literal");
    }
  }
  // Consume exactly one newline before the binary section.
  if (in.get() != '\n') {
    fail("malformed separator before AND section");
  }

  aig::Aig net;
  std::vector<aig::Signal> var_sig(m + 1, net.const0());
  for (std::size_t k = 1; k <= i; ++k) {
    var_sig[k] = net.create_pi(); // binary format: input k has literal 2k
  }
  auto signal_of = [&](std::size_t lit) {
    return var_sig[lit >> 1] ^ ((lit & 1) != 0);
  };
  for (std::size_t k = 0; k < a; ++k) {
    const std::size_t lhs = 2 * (i + 1 + k);
    const std::size_t delta0 = get_delta();
    if (delta0 >= lhs) {
      fail("AND delta out of range");
    }
    const std::size_t rhs0 = lhs - delta0;
    const std::size_t delta1 = get_delta();
    if (delta1 > rhs0) {
      fail("second AND delta out of range");
    }
    const std::size_t rhs1 = rhs0 - delta1;
    var_sig[lhs >> 1] = net.create_and(signal_of(rhs0), signal_of(rhs1));
  }
  for (std::size_t k = 0; k < o; ++k) {
    net.add_po(signal_of(output_lits[k]));
  }
  // Optional symbol table.
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == 'c') {
      break;
    }
    std::istringstream ls(line);
    std::string tag;
    std::string name;
    ls >> tag >> name;
    if (tag.size() < 2 || name.empty()) {
      continue;
    }
    const std::size_t index = symbol_index(tag);
    if (tag[0] == 'i' && index < i) {
      net.set_pi_name(static_cast<std::uint32_t>(index), name);
    } else if (tag[0] == 'o' && index < o) {
      net.set_po_name(static_cast<std::uint32_t>(index), name);
    }
  }
  return net;
}

aig::Aig parse_aiger_auto(std::istream& in, const std::string& source) {
  // Peek at the magic word without consuming it.
  const auto start = in.tellg();
  std::string magic;
  in >> magic;
  in.seekg(start);
  if (magic == "aig") {
    return parse_aiger_binary(in, source);
  }
  return parse_aiger(in, source);
}

aig::Aig parse_aiger_auto_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("aiger", path, 0, "cannot open file");
  }
  return parse_aiger_auto(in, path);
}

void write_aiger_binary(const aig::Aig& input, std::ostream& out) {
  const aig::Aig net = input.cleanup();
  // Binary format fixes input literals to 2..2I and requires each AND's
  // lhs > rhs0 >= rhs1; our creation order is topological, so renumbering
  // nodes in (PIs, ANDs-in-order) sequence satisfies it after sorting the
  // two fanins.
  std::vector<std::size_t> var_of(net.num_nodes(), 0);
  std::size_t next = 1;
  for (std::uint32_t k = 0; k < net.num_pis(); ++k) {
    var_of[net.pi_at(k)] = next++;
  }
  std::size_t num_ands = 0;
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (net.is_and(n)) {
      var_of[n] = next++;
      ++num_ands;
    }
  }
  auto lit_of = [&](aig::Signal s) {
    return 2 * var_of[s.node()] + (s.complemented() ? 1 : 0);
  };
  out << "aig " << (next - 1) << ' ' << net.num_pis() << " 0 "
      << net.num_pos() << ' ' << num_ands << '\n';
  for (std::uint32_t k = 0; k < net.num_pos(); ++k) {
    out << lit_of(net.po_at(k)) << '\n';
  }
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    const std::size_t lhs = 2 * var_of[n];
    std::size_t rhs0 = lit_of(net.fanin0(n));
    std::size_t rhs1 = lit_of(net.fanin1(n));
    if (rhs0 < rhs1) {
      std::swap(rhs0, rhs1);
    }
    put_delta(out, lhs - rhs0);
    put_delta(out, rhs0 - rhs1);
  }
  for (std::uint32_t k = 0; k < net.num_pis(); ++k) {
    out << 'i' << k << ' ' << net.pi_name(k) << '\n';
  }
  for (std::uint32_t k = 0; k < net.num_pos(); ++k) {
    out << 'o' << k << ' ' << net.po_name(k) << '\n';
  }
}

std::string write_aiger_binary_string(const aig::Aig& net) {
  std::ostringstream out;
  write_aiger_binary(net, out);
  return out.str();
}

} // namespace rcgp::io
