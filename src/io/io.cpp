#include "io/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "aig/aig_simulate.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/parse_error.hpp"
#include "io/pla.hpp"
#include "io/real.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"
#include "rqfp/simulate.hpp"

namespace rcgp::io {

namespace {

std::string extension_of(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  const auto dot = path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return "";
  }
  return path.substr(dot);
}

/// Bounded sniff window: binary garbage must not make detection read (or
/// allocate) the whole file looking for a newline.
constexpr std::size_t kSniffBytes = 4096;

/// First whitespace-trimmed, non-empty, non-comment line within the first
/// kSniffBytes of the file (empty when that window has none). Throws a
/// contextual ParseError for unopenable and empty files.
std::string first_content_line(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail_parse("auto", path, 0, "cannot open file");
  }
  std::string window(kSniffBytes, '\0');
  in.read(window.data(), static_cast<std::streamsize>(window.size()));
  window.resize(static_cast<std::size_t>(in.gcount()));
  if (window.empty()) {
    fail_parse("auto", path, 0, "file is empty");
  }
  std::size_t pos = 0;
  for (int i = 0; i < 64 && pos < window.size(); ++i) {
    std::size_t nl = window.find('\n', pos);
    if (nl == std::string::npos) {
      nl = window.size(); // last (possibly truncated) line of the window
    }
    std::string line = window.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t b = line.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) {
      continue;
    }
    if (line[b] == '#' || (line[b] == '/' && b + 1 < line.size() &&
                           line[b + 1] == '/')) {
      continue; // comment line (BLIF/PLA/.real '#', Verilog '//')
    }
    const std::size_t e = line.find_last_not_of(" \t\r\n");
    return line.substr(b, e - b + 1);
  }
  return "";
}

/// Escapes non-printable bytes (\xNN) so a binary-garbage snippet stays a
/// one-line, terminal-safe error message.
std::string printable_snippet(const std::string& s, std::size_t max_len) {
  std::string out;
  out.reserve(max_len + 8);
  for (std::size_t i = 0; i < s.size() && out.size() < max_len; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= 0x20 && c < 0x7F && c != '"' && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  if (out.size() >= max_len) {
    out += "...";
  }
  return out;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

} // namespace

std::string_view to_string(Format format) {
  switch (format) {
    case Format::kAuto: return "auto";
    case Format::kVerilog: return "verilog";
    case Format::kBlif: return "blif";
    case Format::kAiger: return "aiger";
    case Format::kPla: return "pla";
    case Format::kReal: return "real";
    case Format::kRqfp: return "rqfp";
    case Format::kDot: return "dot";
  }
  return "unknown";
}

Format format_from_extension(const std::string& path) {
  const std::string ext = extension_of(path);
  if (ext == ".v") return Format::kVerilog;
  if (ext == ".blif") return Format::kBlif;
  if (ext == ".aag" || ext == ".aig") return Format::kAiger;
  if (ext == ".pla") return Format::kPla;
  if (ext == ".real") return Format::kReal;
  if (ext == ".rqfp") return Format::kRqfp;
  if (ext == ".dot") return Format::kDot;
  return Format::kAuto;
}

Format detect_format(const std::string& path) {
  const Format by_ext = format_from_extension(path);
  if (by_ext != Format::kAuto) {
    return by_ext;
  }
  // Unknown extension: sniff the leading content. Each supported format
  // opens with an unmistakable token.
  const std::string head = first_content_line(path);
  if (starts_with(head, "aag ") || starts_with(head, "aig ")) {
    return Format::kAiger;
  }
  if (starts_with(head, ".rqfp")) {
    return Format::kRqfp;
  }
  if (starts_with(head, ".model")) {
    return Format::kBlif;
  }
  if (starts_with(head, "module")) {
    return Format::kVerilog;
  }
  if (starts_with(head, ".i ") || starts_with(head, ".i\t")) {
    return Format::kPla;
  }
  if (starts_with(head, ".version") || starts_with(head, ".numvars")) {
    return Format::kReal;
  }
  fail_parse("auto", path, 0,
             "cannot detect format from extension or content (leading "
             "line: \"" +
                 printable_snippet(head, 40) + "\")");
}

unsigned Network::num_pis() const {
  if (aig) return aig->num_pis();
  if (rqfp) return rqfp->num_pis();
  return tables.empty() ? 0 : tables.front().num_vars();
}

unsigned Network::num_pos() const {
  if (aig) return aig->num_pos();
  if (rqfp) return rqfp->num_pos();
  return static_cast<unsigned>(tables.size());
}

std::vector<tt::TruthTable> Network::to_tables() const {
  if (aig) {
    return aig::simulate(*aig);
  }
  if (rqfp) {
    return rqfp::simulate(*rqfp);
  }
  return tables;
}

Network read_network(const std::string& path, Format format) {
  Network net;
  net.source = path;
  net.format = format == Format::kAuto ? detect_format(path) : format;
  // Backstop contract: whatever a parser (or a constructor it feeds, e.g.
  // Netlist::add_gate or RealCircuit::to_tables) throws at malformed
  // input, read_network surfaces it as a contextual ParseError — callers
  // need exactly one exception type to distinguish "bad input file" from
  // a programming error.
  try {
    switch (net.format) {
      case Format::kVerilog:
        net.aig = parse_verilog_file(path);
        break;
      case Format::kBlif:
        net.aig = parse_blif_file(path);
        break;
      case Format::kAiger:
        net.aig = parse_aiger_auto_file(path); // ASCII and binary
        break;
      case Format::kPla: {
        auto pla = parse_pla_file(path);
        net.po_names = std::move(pla.output_names);
        net.tables = std::move(pla.tables);
        break;
      }
      case Format::kReal:
        net.tables = parse_real_file(path).to_tables();
        break;
      case Format::kRqfp:
        net.rqfp = parse_rqfp_file(path);
        break;
      case Format::kAuto:
      case Format::kDot:
        fail_parse("auto", path, 0,
                   "format '" + std::string(to_string(net.format)) +
                       "' is not readable");
    }
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception& e) {
    fail_parse(std::string(to_string(net.format)).c_str(), path, 0,
               e.what());
  }
  if (net.aig) {
    for (unsigned o = 0; o < net.aig->num_pos(); ++o) {
      net.po_names.push_back(net.aig->po_name(o));
    }
  }
  return net;
}

void write_network(const rqfp::Netlist& net, const std::string& path,
                   Format format) {
  const Format f = format == Format::kAuto ? format_from_extension(path)
                                           : format;
  switch (f) {
    case Format::kRqfp:
      write_rqfp_file(net, path);
      return;
    case Format::kVerilog: {
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("io: cannot write " + path);
      }
      write_structural_verilog(net, out);
      return;
    }
    case Format::kDot: {
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("io: cannot write " + path);
      }
      write_dot(net, out);
      return;
    }
    default:
      throw std::invalid_argument(
          "io: cannot write an RQFP netlist as '" +
          std::string(to_string(f)) + "' (" + path +
          "); supported: .rqfp, .v, .dot");
  }
}

void write_network(const aig::Aig& net, const std::string& path,
                   Format format) {
  const Format f = format == Format::kAuto ? format_from_extension(path)
                                           : format;
  if (f != Format::kVerilog && f != Format::kBlif && f != Format::kAiger) {
    throw std::invalid_argument(
        "io: cannot write an AIG as '" + std::string(to_string(f)) + "' (" +
        path + "); supported: .v, .blif, .aag, .aig");
  }
  const bool binary_aiger = extension_of(path) == ".aig";
  std::ofstream out(path, binary_aiger ? std::ios::binary : std::ios::out);
  if (!out) {
    throw std::runtime_error("io: cannot write " + path);
  }
  if (f == Format::kVerilog) {
    write_verilog(net, out);
  } else if (f == Format::kBlif) {
    write_blif(net, out);
  } else if (binary_aiger) {
    write_aiger_binary(net, out);
  } else {
    write_aiger(net, out);
  }
}

} // namespace rcgp::io
