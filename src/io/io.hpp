#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::io {

/// Every on-disk circuit format the framework reads or writes. kAuto asks
/// the facade to detect the format from the file extension first and, for
/// reads with an unknown extension, from the file's leading bytes.
enum class Format : std::uint8_t {
  kAuto,    ///< detect from extension / magic
  kVerilog, ///< .v   — structural/dataflow Verilog subset (AIG)
  kBlif,    ///< .blif — combinational BLIF (AIG)
  kAiger,   ///< .aag / .aig — ASCII or binary AIGER (AIG)
  kPla,     ///< .pla — Berkeley PLA (truth tables)
  kReal,    ///< .real — RevLib reversible circuit (truth tables)
  kRqfp,    ///< .rqfp — RQFP netlist interchange
  kDot,     ///< .dot — Graphviz rendering (write-only)
};

/// Stable lowercase name ("auto", "verilog", "blif", "aiger", "pla",
/// "real", "rqfp", "dot").
std::string_view to_string(Format format);

/// Maps a path's extension to its format; Format::kAuto when the
/// extension is unknown (the read path then sniffs the file contents).
Format format_from_extension(const std::string& path);

/// Resolves the concrete format of an input file: extension first, then
/// content sniffing (AIGER magic, `.model`, `module`, `.rqfp 1`, PLA/REAL
/// dot-directives). Throws io::ParseError when neither identifies it.
Format detect_format(const std::string& path);

/// An in-memory circuit read through the facade, in whichever native
/// representation its format carries: AIG (Verilog/BLIF/AIGER), RQFP
/// netlist (.rqfp), or plain truth tables (.pla/.real). Exactly one of
/// the three representations is populated; `to_tables()` provides the
/// uniform specification view every consumer in the repo understands.
struct Network {
  Format format = Format::kAuto; ///< the resolved concrete format
  std::string source;            ///< path the network was read from

  std::optional<aig::Aig> aig;         ///< kVerilog / kBlif / kAiger
  std::optional<rqfp::Netlist> rqfp;   ///< kRqfp
  std::vector<tt::TruthTable> tables;  ///< kPla / kReal
  std::vector<std::string> po_names;   ///< when the format names outputs

  unsigned num_pis() const;
  unsigned num_pos() const;

  /// The exhaustive per-output truth tables of the network (simulated for
  /// AIG / RQFP sources). Throws std::invalid_argument when the network
  /// has more PIs than tt::TruthTable::kMaxVars.
  std::vector<tt::TruthTable> to_tables() const;
};

/// Reads a circuit file in any supported format. With Format::kAuto the
/// format is resolved by detect_format(); passing a concrete format skips
/// detection (and overrides the extension). Throws io::ParseError on
/// unreadable or malformed input, with source:line context.
Network read_network(const std::string& path, Format format = Format::kAuto);

/// Writes an RQFP netlist: .rqfp interchange, structural Verilog (.v), or
/// Graphviz (.dot). Throws std::invalid_argument for formats that cannot
/// represent an RQFP netlist and std::runtime_error when the file cannot
/// be written.
void write_network(const rqfp::Netlist& net, const std::string& path,
                   Format format = Format::kAuto);

/// Writes an AIG: Verilog (.v), BLIF (.blif), ASCII AIGER (.aag), or
/// binary AIGER (.aig). Throws std::invalid_argument for formats that
/// cannot represent an AIG and std::runtime_error on write failure.
void write_network(const aig::Aig& net, const std::string& path,
                   Format format = Format::kAuto);

} // namespace rcgp::io
