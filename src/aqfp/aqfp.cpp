#include "aqfp/aqfp.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rcgp::aqfp {

unsigned jj_cost(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst:
      return 0;
    case CellKind::kBuffer:
    case CellKind::kSplitter:
      return 2;
    case CellKind::kMajority:
      return 6;
  }
  return 0;
}

std::uint32_t Netlist::add_cell(Cell cell) {
  if (cell.inverted.empty()) {
    cell.inverted.assign(cell.fanins.size(), false);
  }
  if (cell.inverted.size() != cell.fanins.size()) {
    throw std::invalid_argument("aqfp: inverted/fanin size mismatch");
  }
  for (const auto f : cell.fanins) {
    if (f >= cells_.size()) {
      throw std::invalid_argument("aqfp: fanin forward reference");
    }
  }
  cells_.push_back(std::move(cell));
  return static_cast<std::uint32_t>(cells_.size() - 1);
}

void Netlist::add_output(std::uint32_t cell_id, const std::string& name) {
  if (cell_id >= cells_.size()) {
    throw std::invalid_argument("aqfp: output cell out of range");
  }
  outputs_.push_back(cell_id);
  output_names_.push_back(name);
}

void Netlist::register_input(std::uint32_t cell_id) {
  if (cells_[cell_id].kind != CellKind::kInput) {
    throw std::invalid_argument("aqfp: register_input on non-input cell");
  }
  inputs_.push_back(cell_id);
}

unsigned Netlist::total_jjs() const {
  unsigned total = 0;
  for (const auto& c : cells_) {
    total += jj_cost(c.kind);
  }
  return total;
}

unsigned Netlist::count(CellKind kind) const {
  return static_cast<unsigned>(
      std::count_if(cells_.begin(), cells_.end(),
                    [&](const Cell& c) { return c.kind == kind; }));
}

std::uint32_t Netlist::max_phase() const {
  std::uint32_t m = 0;
  for (const auto& c : cells_) {
    if (c.kind != CellKind::kConst) {
      m = std::max(m, c.phase);
    }
  }
  return m;
}

std::string Netlist::validate() const {
  std::vector<std::uint32_t> fanout(cells_.size(), 0);
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    const std::size_t expected_fanins =
        c.kind == CellKind::kMajority ? 3
        : (c.kind == CellKind::kBuffer || c.kind == CellKind::kSplitter) ? 1
                                                                         : 0;
    if (c.fanins.size() != expected_fanins) {
      return "cell " + std::to_string(id) + " has wrong fanin count";
    }
    for (const auto f : c.fanins) {
      const Cell& src = cells_[f];
      ++fanout[f];
      if (src.kind == CellKind::kConst) {
        continue; // excitation-supplied, phase-exempt
      }
      if (src.phase + 1 != c.phase) {
        return "cell " + std::to_string(id) + " at phase " +
               std::to_string(c.phase) + " reads phase " +
               std::to_string(src.phase);
      }
    }
  }
  for (const auto o : outputs_) {
    ++fanout[o];
  }
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    const std::uint32_t capacity =
        c.kind == CellKind::kSplitter ? 3
        : c.kind == CellKind::kConst ? 0xFFFFFFFFu
                                     : 1;
    if (fanout[id] > capacity) {
      return "cell " + std::to_string(id) + " drives " +
             std::to_string(fanout[id]) + " loads (capacity " +
             std::to_string(capacity) + ")";
    }
  }
  return "";
}

std::vector<tt::TruthTable> Netlist::simulate() const {
  const unsigned nv = num_inputs();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("aqfp: too many inputs to simulate");
  }
  std::vector<tt::TruthTable> value(cells_.size(),
                                    tt::TruthTable::constant(nv, false));
  for (unsigned i = 0; i < nv; ++i) {
    value[inputs_[i]] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    auto fanin_value = [&](unsigned i) {
      const auto v = value[c.fanins[i]];
      return c.inverted[i] ? ~v : v;
    };
    switch (c.kind) {
      case CellKind::kInput:
        break; // already set
      case CellKind::kConst:
        value[id] = tt::TruthTable::constant(nv, true);
        break;
      case CellKind::kBuffer:
      case CellKind::kSplitter:
        value[id] = fanin_value(0);
        break;
      case CellKind::kMajority:
        value[id] = tt::TruthTable::majority(fanin_value(0), fanin_value(1),
                                             fanin_value(2));
        break;
    }
  }
  std::vector<tt::TruthTable> out;
  out.reserve(outputs_.size());
  for (const auto o : outputs_) {
    out.push_back(value[o]);
  }
  return out;
}

namespace {
const char* kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInput: return "input";
    case CellKind::kConst: return "const1";
    case CellKind::kBuffer: return "buffer";
    case CellKind::kSplitter: return "splitter";
    case CellKind::kMajority: return "majority";
  }
  return "?";
}
} // namespace

void write_cells(const Netlist& net, std::ostream& out) {
  out << "# AQFP cell netlist: " << net.num_cells() << " cells, "
      << net.total_jjs() << " JJs, " << net.max_phase() << " half-phases\n";
  for (std::uint32_t id = 0; id < net.num_cells(); ++id) {
    const Cell& c = net.cell(id);
    out << "cell " << id << ' ' << kind_name(c.kind) << " phase=" << c.phase;
    if (!c.fanins.empty()) {
      out << " fanins=";
      for (std::size_t i = 0; i < c.fanins.size(); ++i) {
        if (i) {
          out << ',';
        }
        if (c.inverted[i]) {
          out << '!';
        }
        out << c.fanins[i];
      }
    }
    out << '\n';
  }
  for (std::uint32_t o = 0; o < net.num_outputs(); ++o) {
    out << "output " << net.output_at(o) << '\n';
  }
}

std::string write_cells_string(const Netlist& net) {
  std::ostringstream out;
  write_cells(net, out);
  return out.str();
}

void write_cells_dot(const Netlist& net, std::ostream& out) {
  out << "digraph aqfp {\n  rankdir=LR;\n";
  // Group cells of equal phase on one rank so the clock structure shows.
  std::vector<std::vector<std::uint32_t>> by_phase(net.max_phase() + 1);
  for (std::uint32_t id = 0; id < net.num_cells(); ++id) {
    const Cell& c = net.cell(id);
    if (c.kind != CellKind::kConst) {
      by_phase[c.phase].push_back(id);
    }
    const char* shape = c.kind == CellKind::kMajority   ? "invtriangle"
                        : c.kind == CellKind::kSplitter ? "triangle"
                        : c.kind == CellKind::kBuffer   ? "box"
                                                        : "circle";
    out << "  c" << id << " [label=\"" << kind_name(c.kind) << id
        << "\" shape=" << shape << "];\n";
  }
  for (std::size_t phase = 0; phase < by_phase.size(); ++phase) {
    if (by_phase[phase].empty()) {
      continue;
    }
    out << "  { rank=same;";
    for (const auto id : by_phase[phase]) {
      out << " c" << id << ';';
    }
    out << " }\n";
  }
  for (std::uint32_t id = 0; id < net.num_cells(); ++id) {
    const Cell& c = net.cell(id);
    for (std::size_t i = 0; i < c.fanins.size(); ++i) {
      out << "  c" << c.fanins[i] << " -> c" << id;
      if (c.inverted[i]) {
        out << " [style=dashed]";
      }
      out << ";\n";
    }
  }
  for (std::uint32_t o = 0; o < net.num_outputs(); ++o) {
    out << "  out" << o << " [shape=doublecircle];\n";
    out << "  c" << net.output_at(o) << " -> out" << o << ";\n";
  }
  out << "}\n";
}

std::string write_cells_dot_string(const Netlist& net) {
  std::ostringstream out;
  write_cells_dot(net, out);
  return out.str();
}

Netlist expand(const rqfp::Netlist& circuit) {
  const rqfp::Netlist net = circuit.remove_dead_gates();
  const rqfp::BufferPlan plan =
      rqfp::plan_buffers(net, rqfp::BufferSchedule::kAsap);
  const auto levels = net.gate_levels();

  Netlist out;
  const std::uint32_t const_cell =
      out.add_cell(Cell{CellKind::kConst, {}, {}, 0});
  std::vector<std::uint32_t> pi_cell(net.num_pis());
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    pi_cell[i] = out.add_cell(Cell{CellKind::kInput, {}, {}, 0});
    out.register_input(pi_cell[i]);
  }

  // Cell producing each RQFP port, with its phase (half-stages).
  std::vector<std::uint32_t> port_cell(net.first_free_port(), const_cell);
  auto port_phase = [&](rqfp::Port p) -> std::uint32_t {
    if (net.is_gate_port(p)) {
      return 2 * levels[net.gate_of_port(p)];
    }
    return 0; // PIs at phase 0
  };
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port_cell[1 + i] = pi_cell[i];
  }

  /// Extends `cell` with buffer cells until it reaches `target_phase`.
  auto buffer_to = [&](std::uint32_t cell, std::uint32_t from_phase,
                       std::uint32_t target_phase) {
    while (from_phase < target_phase) {
      cell = out.add_cell(
          Cell{CellKind::kBuffer, {cell}, {false}, from_phase + 1});
      ++from_phase;
    }
    return cell;
  };

  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const std::uint32_t stage = levels[g];
    // Inputs must arrive at phase 2*stage - 2 (the end of the previous
    // stage); the per-edge buffer plan says how many RQFP buffers (2 AQFP
    // buffers each) the edge carries.
    std::array<std::uint32_t, 3> splitter{};
    for (unsigned i = 0; i < 3; ++i) {
      const rqfp::Port p = gate.in[i];
      std::uint32_t src = port_cell[p];
      if (net.is_const_port(p)) {
        // Constants couple directly into the splitter bank.
        splitter[i] = out.add_cell(
            Cell{CellKind::kSplitter, {src}, {false}, 2 * stage - 1});
        continue;
      }
      src = buffer_to(src, port_phase(p), 2 * stage - 2);
      splitter[i] = out.add_cell(
          Cell{CellKind::kSplitter, {src}, {false}, 2 * stage - 1});
    }
    for (unsigned k = 0; k < 3; ++k) {
      Cell maj;
      maj.kind = CellKind::kMajority;
      maj.phase = 2 * stage;
      for (unsigned i = 0; i < 3; ++i) {
        maj.fanins.push_back(splitter[i]);
        maj.inverted.push_back(gate.config.inverts(k, i));
      }
      port_cell[net.port_of(g, k)] = out.add_cell(std::move(maj));
    }
  }

  // POs aligned to the final stage.
  const std::uint32_t out_phase = 2 * plan.depth;
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const rqfp::Port p = net.po_at(o);
    std::uint32_t cell = port_cell[p];
    if (!net.is_const_port(p)) {
      cell = buffer_to(cell, port_phase(p), out_phase);
    }
    out.add_output(cell, net.po_name(o));
  }
  return out;
}

} // namespace rcgp::aqfp
