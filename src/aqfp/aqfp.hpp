#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rqfp/buffer.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::aqfp {

/// AQFP cell-level view of an RQFP circuit (Fig. 1(a) of the paper).
///
/// A normal RQFP logic gate is physically three 3-output AQFP splitters
/// feeding three 3-input AQFP majority gates; inverters are realized by
/// negative mutual inductance on the receiving coil and cost no JJs.
/// Clock phases are modeled in *half-stages*: an RQFP clock stage L
/// occupies AQFP phases 2L-1 (splitter bank, excitation I_x1) and 2L
/// (majority bank, excitation I_x2); an RQFP buffer is two cascaded AQFP
/// buffers occupying one full stage.
enum class CellKind : std::uint8_t {
  kInput,    // primary input driver (phase 0)
  kConst,    // constant-1 excitation source (phase-exempt)
  kBuffer,   // AQFP buffer, 2 JJs
  kSplitter, // 3-output AQFP splitter, 2 JJs
  kMajority, // 3-input AQFP majority, 6 JJs
};

struct Cell {
  CellKind kind = CellKind::kBuffer;
  /// Fanin cell ids (kInput/kConst: none; kBuffer/kSplitter: one;
  /// kMajority: three).
  std::vector<std::uint32_t> fanins;
  /// Inductive-coupling inversion per fanin (no JJ cost).
  std::vector<bool> inverted;
  /// AQFP clock phase (half-stage); kConst cells are phase-exempt.
  std::uint32_t phase = 0;
};

/// JJ cost per cell kind (paper §4: buffer/splitter 2 JJ, majority 6 JJ).
unsigned jj_cost(CellKind kind);

class Netlist {
public:
  std::uint32_t add_cell(Cell cell);
  const Cell& cell(std::uint32_t id) const { return cells_[id]; }
  std::uint32_t num_cells() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  void add_output(std::uint32_t cell_id, const std::string& name = "");
  std::uint32_t num_outputs() const {
    return static_cast<std::uint32_t>(outputs_.size());
  }
  std::uint32_t output_at(std::uint32_t i) const { return outputs_[i]; }

  void register_input(std::uint32_t cell_id);
  std::uint32_t num_inputs() const {
    return static_cast<std::uint32_t>(inputs_.size());
  }

  /// Total JJ count over all cells.
  unsigned total_jjs() const;
  unsigned count(CellKind kind) const;
  /// Latest phase over all cells.
  std::uint32_t max_phase() const;

  /// Checks AQFP discipline: every fanin is exactly one phase earlier
  /// (constants exempt), splitters have single-cell fanin, majorities have
  /// three fanins, and fanout of every non-const cell is at most the
  /// capacity of its kind (1 for buffer/majority/input, 3 for splitter).
  /// Returns an empty string when valid.
  std::string validate() const;

  /// Exhaustive simulation over the registered inputs.
  std::vector<tt::TruthTable> simulate() const;

private:
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::uint32_t> outputs_;
  std::vector<std::string> output_names_;
};

/// Writes the cell netlist in a line-per-cell text form:
///   cell <id> <kind> phase=<p> fanins=[!]<id>,...
void write_cells(const Netlist& net, std::ostream& out);
std::string write_cells_string(const Netlist& net);

/// Graphviz DOT of the cell netlist, ranked by clock phase; inverting
/// couplings are drawn as dashed edges.
void write_cells_dot(const Netlist& net, std::ostream& out);
std::string write_cells_dot_string(const Netlist& net);

/// Expands an RQFP netlist plus its ASAP buffer plan into the AQFP cell
/// netlist. Dead gates are removed first. The result satisfies
/// Netlist::validate() and computes the same PO functions; its JJ count
/// equals the paper's formula 24*n_r + 4*n_b by construction (asserted in
/// tests, not assumed).
Netlist expand(const rqfp::Netlist& circuit);

} // namespace rcgp::aqfp
