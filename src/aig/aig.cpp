#include "aig/aig.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcgp::aig {

namespace {
std::uint64_t strash_key(Signal a, Signal b) {
  if (b < a) {
    std::swap(a, b);
  }
  return (static_cast<std::uint64_t>(a.code()) << 32) | b.code();
}
} // namespace

Aig::Aig() {
  nodes_.push_back(Node{Signal(), Signal(), kConst});
}

Signal Aig::create_pi(const std::string& name) {
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{Signal(), Signal(), kPi});
  pi_index_[n] = static_cast<std::uint32_t>(pis_.size());
  pis_.push_back(n);
  pi_names_.push_back(name.empty() ? "x" + std::to_string(pis_.size() - 1)
                                   : name);
  return Signal(n, false);
}

Signal Aig::create_and(Signal a, Signal b) {
  a = resolve(a);
  b = resolve(b);
  // Trivial simplifications.
  if (a == const0() || b == const0() || a == !b) {
    return const0();
  }
  if (a == const1()) {
    return b;
  }
  if (b == const1() || a == b) {
    return a;
  }
  return strash_lookup_or_create(a, b);
}

Signal Aig::strash_lookup_or_create(Signal a, Signal b) {
  if (b < a) {
    std::swap(a, b);
  }
  const std::uint64_t key = strash_key(a, b);
  const auto it = strash_.find(key);
  if (it != strash_.end() && !is_replaced(it->second)) {
    return Signal(it->second, false);
  }
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b, kAnd});
  strash_[key] = n;
  return Signal(n, false);
}

Signal Aig::create_xor(Signal a, Signal b) {
  // a ^ b = !(!( a & !b) & !(!a & b))
  return !create_and(!create_and(a, !b), !create_and(!a, b));
}

Signal Aig::create_mux(Signal sel, Signal t, Signal e) {
  return !create_and(!create_and(sel, t), !create_and(!sel, e));
}

Signal Aig::create_maj(Signal a, Signal b, Signal c) {
  const Signal ab = create_and(a, b);
  const Signal ac = create_and(a, c);
  const Signal bc = create_and(b, c);
  return create_or(ab, create_or(ac, bc));
}

std::uint32_t Aig::add_po(Signal s, const std::string& name) {
  const auto idx = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(s);
  po_names_.push_back(name.empty() ? "y" + std::to_string(idx) : name);
  return idx;
}

Signal Aig::resolve(Signal s) const {
  for (;;) {
    const auto it = repl_.find(s.node());
    if (it == repl_.end()) {
      return s;
    }
    s = it->second ^ s.complemented();
  }
}

void Aig::replace(std::uint32_t n, Signal s) {
  if (!is_and(n)) {
    throw std::invalid_argument("Aig::replace: only AND nodes replaceable");
  }
  s = resolve(s);
  if (s.node() == n) {
    return;
  }
  repl_[n] = s;
}

std::uint32_t Aig::count_live_ands() const {
  std::vector<bool> mark(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  std::uint32_t count = 0;
  for (const auto& po : pos_) {
    stack.push_back(resolve(po).node());
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n]) {
      continue;
    }
    mark[n] = true;
    if (is_and(n)) {
      ++count;
      stack.push_back(fanin0(n).node());
      stack.push_back(fanin1(n).node());
    }
  }
  return count;
}

Aig Aig::cleanup() const {
  Aig out;
  std::vector<Signal> map(nodes_.size(), Signal());
  std::vector<bool> done(nodes_.size(), false);
  map[0] = out.const0();
  done[0] = true;
  for (std::uint32_t i = 0; i < pis_.size(); ++i) {
    map[pis_[i]] = out.create_pi(pi_names_[i]);
    done[pis_[i]] = true;
  }
  // Iterative DFS from each PO over the resolved graph.
  std::vector<std::uint32_t> stack;
  for (const auto& po_raw : pos_) {
    stack.push_back(resolve(po_raw).node());
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (done[n]) {
        stack.pop_back();
        continue;
      }
      const Signal a = fanin0(n);
      const Signal b = fanin1(n);
      bool ready = true;
      if (!done[a.node()]) {
        stack.push_back(a.node());
        ready = false;
      }
      if (!done[b.node()]) {
        stack.push_back(b.node());
        ready = false;
      }
      if (!ready) {
        continue;
      }
      stack.pop_back();
      map[n] = out.create_and(map[a.node()] ^ a.complemented(),
                              map[b.node()] ^ b.complemented());
      done[n] = true;
    }
  }
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    const Signal po = resolve(pos_[i]);
    out.add_po(map[po.node()] ^ po.complemented(), po_names_[i]);
  }
  return out;
}

std::vector<std::uint32_t> Aig::compute_levels() const {
  std::vector<std::uint32_t> level(nodes_.size(), 0);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (is_and(n) && !is_replaced(n)) {
      const Signal a = fanin0(n);
      const Signal b = fanin1(n);
      level[n] = 1 + std::max(level[a.node()], level[b.node()]);
    }
  }
  return level;
}

std::uint32_t Aig::depth() const {
  const auto level = compute_levels();
  std::uint32_t d = 0;
  for (const auto& po : pos_) {
    d = std::max(d, level[resolve(po).node()]);
  }
  return d;
}

std::vector<std::uint32_t> Aig::compute_refs() const {
  std::vector<std::uint32_t> refs(nodes_.size(), 0);
  std::vector<bool> mark(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  for (const auto& po : pos_) {
    const Signal s = resolve(po);
    ++refs[s.node()];
    stack.push_back(s.node());
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n] || !is_and(n)) {
      continue;
    }
    mark[n] = true;
    const Signal a = fanin0(n);
    const Signal b = fanin1(n);
    ++refs[a.node()];
    ++refs[b.node()];
    stack.push_back(a.node());
    stack.push_back(b.node());
  }
  return refs;
}

void Aig::pop_nodes_to(std::uint32_t first_kept) {
  while (nodes_.size() > first_kept) {
    const auto n = static_cast<std::uint32_t>(nodes_.size() - 1);
    if (!is_and(n)) {
      throw std::logic_error("pop_nodes_to: cannot pop non-AND node");
    }
    const std::uint64_t key = strash_key(nodes_[n].fanin0, nodes_[n].fanin1);
    const auto it = strash_.find(key);
    if (it != strash_.end() && it->second == n) {
      strash_.erase(it);
    }
    repl_.erase(n);
    nodes_.pop_back();
  }
}

} // namespace rcgp::aig
