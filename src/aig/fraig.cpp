#include "aig/fraig.hpp"

#include <unordered_map>
#include <vector>

#include "aig/aig_simulate.hpp"
#include "rqfp/simd.hpp"
#include "sat/cnf.hpp"
#include "util/rng.hpp"

namespace rcgp::aig {

namespace {

/// Tseitin-encodes every live AND node of `net`; returns one literal per
/// node (PIs get fresh variables, constant folds to false).
std::vector<sat::Lit> encode_aig(sat::CnfBuilder& builder, const Aig& net) {
  std::vector<sat::Lit> lit(net.num_nodes(), builder.false_lit());
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    lit[net.pi_at(i)] = builder.new_lit();
  }
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    const Signal a = net.fanin0(n);
    const Signal b = net.fanin1(n);
    const sat::Lit fa =
        a.complemented() ? ~lit[a.node()] : lit[a.node()];
    const sat::Lit fb =
        b.complemented() ? ~lit[b.node()] : lit[b.node()];
    lit[n] = builder.make_and(fa, fb);
  }
  return lit;
}

} // namespace

Aig fraig(const Aig& input, const FraigParams& params, FraigStats* stats) {
  Aig net = input.cleanup();
  FraigStats local;
  local.ands_before = net.count_live_ands();

  // 1. Random simulation signatures.
  util::Rng rng(params.seed);
  std::vector<std::vector<std::uint64_t>> patterns(net.num_pis());
  for (auto& row : patterns) {
    row.resize(params.sim_words);
    for (auto& w : row) {
      w = rng.next();
    }
  }
  // Per-node signatures (not just POs): run the word simulation inline.
  std::vector<std::vector<std::uint64_t>> sig(
      net.num_nodes(), std::vector<std::uint64_t>(params.sim_words, 0));
  for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
    sig[net.pi_at(i)] = patterns[i];
  }
  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n)) {
      continue;
    }
    const Signal a = net.fanin0(n);
    const Signal b = net.fanin1(n);
    rqfp::simd::kernels().and2(sig[a.node()].data(),
                               a.complemented() ? ~0ull : 0,
                               sig[b.node()].data(),
                               b.complemented() ? ~0ull : 0, sig[n].data(),
                               params.sim_words);
  }

  // 2. Candidate classes keyed by phase-normalized signature hash.
  auto signature_hash = [&](std::uint32_t n, bool& phase) {
    phase = (sig[n][0] & 1) != 0; // normalize so bit 0 is 0
    std::uint64_t h = 0x9E3779B97F4A7C15ULL;
    const std::uint64_t flip = phase ? ~0ull : 0;
    for (const auto w : sig[n]) {
      h ^= (w ^ flip) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };

  // 3. One shared solver over the whole (original) network.
  sat::Solver solver;
  sat::CnfBuilder builder(solver);
  const auto lits = encode_aig(builder, net);

  std::unordered_map<std::uint64_t, std::uint32_t> leader_of;
  std::vector<std::pair<std::uint32_t, Signal>> merges;
  const auto refs = net.compute_refs();

  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_and(n) || refs[n] == 0) {
      continue;
    }
    bool phase_n = false;
    const std::uint64_t key = signature_hash(n, phase_n);
    const auto it = leader_of.find(key);
    if (it == leader_of.end()) {
      leader_of[key] = n;
      continue;
    }
    const std::uint32_t leader = it->second;
    // Verify exact signature match (hash collisions possible).
    bool phase_l = false;
    signature_hash(leader, phase_l);
    const std::uint64_t flip = (phase_n != phase_l) ? ~0ull : 0;
    bool same = true;
    for (std::size_t w = 0; w < params.sim_words; ++w) {
      if (sig[n][w] != (sig[leader][w] ^ flip)) {
        same = false;
        break;
      }
    }
    if (!same) {
      continue;
    }
    ++local.candidate_pairs;
    // SAT proof: n == leader ^ complement?
    const bool complemented = phase_n != phase_l;
    const sat::Lit ln = lits[n];
    const sat::Lit ll = complemented ? ~lits[leader] : lits[leader];
    sat::SolveLimits limits;
    limits.max_conflicts = params.max_conflicts_per_pair;
    // Two queries: (n & !l) and (!n & l) must both be UNSAT.
    std::vector<sat::Lit> q1{ln, ~ll};
    const auto r1 = solver.solve(q1, limits);
    if (r1 == sat::SolveResult::kSat) {
      ++local.disproved;
      continue;
    }
    if (r1 == sat::SolveResult::kUnknown) {
      ++local.undecided;
      continue;
    }
    std::vector<sat::Lit> q2{~ln, ll};
    const auto r2 = solver.solve(q2, limits);
    if (r2 == sat::SolveResult::kSat) {
      ++local.disproved;
      continue;
    }
    if (r2 == sat::SolveResult::kUnknown) {
      ++local.undecided;
      continue;
    }
    ++local.proved_equivalent;
    merges.emplace_back(n, Signal(leader, complemented));
  }

  for (const auto& [node, target] : merges) {
    net.replace(node, net.resolve(target));
  }
  Aig out = net.cleanup();
  local.ands_after = out.count_live_ands();
  if (stats) {
    *stats = local;
  }
  return out;
}

} // namespace rcgp::aig
