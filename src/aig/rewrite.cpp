#include "aig/rewrite.hpp"

#include <algorithm>

#include "tt/isop.hpp"

namespace rcgp::aig {

GainManager::GainManager(Aig& aig) : aig_(aig), refs_(aig.compute_refs()) {}

std::uint32_t& GainManager::ref_slot(std::uint32_t n) {
  if (n >= refs_.size()) {
    refs_.resize(n + 1, 0);
  }
  return refs_[n];
}

std::uint32_t GainManager::deref_rec(std::uint32_t n) {
  std::uint32_t freed = 1;
  for (const Signal f : {aig_.fanin0(n), aig_.fanin1(n)}) {
    auto& r = ref_slot(f.node());
    if (r == 0) {
      continue; // defensive: never underflow
    }
    if (--r == 0 && aig_.is_and(f.node())) {
      freed += deref_rec(f.node());
    }
  }
  return freed;
}

std::uint32_t GainManager::ref_rec(std::uint32_t n) {
  std::uint32_t added = 1;
  for (const Signal f : {aig_.fanin0(n), aig_.fanin1(n)}) {
    auto& r = ref_slot(f.node());
    if (r++ == 0 && aig_.is_and(f.node())) {
      added += ref_rec(f.node());
    }
  }
  return added;
}

std::uint32_t GainManager::deref_mffc(std::uint32_t root) {
  return deref_rec(root);
}

void GainManager::ref_mffc(std::uint32_t root) { ref_rec(root); }

std::uint32_t GainManager::ref_candidate(Signal s) {
  const std::uint32_t n = s.node();
  if (!aig_.is_and(n)) {
    ref_slot(n); // ensure slot exists
    return 0;
  }
  if (ref_slot(n) > 0) {
    return 0; // already live: adds no new nodes
  }
  return ref_rec(n);
}

void GainManager::unref_candidate(Signal s) {
  const std::uint32_t n = s.node();
  if (!aig_.is_and(n) || ref_slot(n) > 0) {
    return;
  }
  deref_rec(n);
}

void GainManager::commit(std::uint32_t root, Signal candidate) {
  auto& cand_refs = ref_slot(candidate.node());
  cand_refs += ref_slot(root);
  ref_slot(root) = 0;
  aig_.replace(root, candidate);
}

std::optional<tt::TruthTable> try_cut_function(const Aig& aig,
                                               std::uint32_t root,
                                               const Cut& cut) {
  // Validate the cone does not escape before computing.
  std::vector<std::uint32_t> stack{root};
  std::vector<std::uint32_t> seen;
  auto is_leaf = [&](std::uint32_t n) {
    return std::binary_search(cut.leaves.begin(), cut.leaves.end(), n);
  };
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (is_leaf(n) || n == 0 ||
        std::find(seen.begin(), seen.end(), n) != seen.end()) {
      continue;
    }
    if (!aig.is_and(n)) {
      return std::nullopt; // hit a PI that is not a leaf
    }
    seen.push_back(n);
    if (seen.size() > 256) {
      return std::nullopt; // degenerate / stale cut
    }
    stack.push_back(aig.fanin0(n).node());
    stack.push_back(aig.fanin1(n).node());
  }
  return cut_function(aig, root, cut);
}

namespace {

/// Literal-count estimate of a factored form, used to choose polarity.
std::uint64_t factored_cost(const std::vector<tt::Cube>& cubes) {
  std::uint64_t lits = 0;
  for (const auto& c : cubes) {
    lits += c.num_literals();
  }
  return lits + cubes.size();
}

Signal build_cube(Aig& aig, const tt::Cube& cube,
                  std::span<const Signal> leaves) {
  Signal acc = aig.const1();
  for (unsigned v = 0; v < leaves.size(); ++v) {
    if (cube.mask & (1u << v)) {
      const Signal lit =
          (cube.polarity & (1u << v)) ? leaves[v] : !leaves[v];
      acc = aig.create_and(acc, lit);
    }
  }
  return acc;
}

Signal build_cover(Aig& aig, std::vector<tt::Cube> cubes,
                   std::span<const Signal> leaves) {
  if (cubes.empty()) {
    return aig.const0();
  }
  for (const auto& c : cubes) {
    if (c.mask == 0) {
      return aig.const1();
    }
  }
  if (cubes.size() == 1) {
    return build_cube(aig, cubes[0], leaves);
  }
  // Find the most frequent literal for algebraic division.
  unsigned best_var = 0;
  bool best_pol = false;
  unsigned best_count = 0;
  for (unsigned v = 0; v < leaves.size(); ++v) {
    for (const bool pol : {false, true}) {
      unsigned count = 0;
      for (const auto& c : cubes) {
        if ((c.mask & (1u << v)) &&
            (((c.polarity >> v) & 1) != 0) == pol) {
          ++count;
        }
      }
      if (count > best_count) {
        best_count = count;
        best_var = v;
        best_pol = pol;
      }
    }
  }
  if (best_count <= 1) {
    // No common literal: plain OR of cube ANDs.
    Signal acc = aig.const0();
    for (const auto& c : cubes) {
      acc = aig.create_or(acc, build_cube(aig, c, leaves));
    }
    return acc;
  }
  std::vector<tt::Cube> quotient;
  std::vector<tt::Cube> remainder;
  for (const auto& c : cubes) {
    if ((c.mask & (1u << best_var)) &&
        (((c.polarity >> best_var) & 1) != 0) == best_pol) {
      tt::Cube q = c;
      q.mask &= ~(1u << best_var);
      q.polarity &= ~(1u << best_var);
      quotient.push_back(q);
    } else {
      remainder.push_back(c);
    }
  }
  const Signal lit = best_pol ? leaves[best_var] : !leaves[best_var];
  const Signal q = build_cover(aig, std::move(quotient), leaves);
  const Signal r = build_cover(aig, std::move(remainder), leaves);
  return aig.create_or(aig.create_and(lit, q), r);
}

} // namespace

Signal build_factored(Aig& aig, const tt::TruthTable& function,
                      std::span<const Signal> leaf_signals) {
  const auto pos_cubes = tt::isop(function);
  const auto neg_cubes = tt::isop(~function);
  if (factored_cost(neg_cubes) < factored_cost(pos_cubes)) {
    return !build_cover(aig, neg_cubes, leaf_signals);
  }
  return build_cover(aig, pos_cubes, leaf_signals);
}

PassStats rewrite_pass(Aig& aig, const RewriteParams& params) {
  PassStats stats;
  CutParams cp;
  cp.max_leaves = params.max_leaves;
  cp.max_cuts_per_node = params.max_cuts_per_node;
  const auto cuts = enumerate_cuts(aig, cp);
  GainManager gm(aig);
  const std::uint32_t original_count = aig.num_nodes();

  for (std::uint32_t n = 0; n < original_count; ++n) {
    if (!aig.is_and(n) || aig.is_replaced(n) || gm.refs(n) == 0) {
      continue;
    }
    // Best candidate over all cuts of n.
    for (const auto& cut : cuts[n]) {
      if (cut.leaves.size() < 2 ||
          (cut.leaves.size() == 1 && cut.leaves[0] == n)) {
        continue;
      }
      bool stale = false;
      for (const auto leaf : cut.leaves) {
        if (leaf == n || aig.is_replaced(leaf)) {
          stale = true;
          break;
        }
      }
      if (stale) {
        continue;
      }
      const auto func = try_cut_function(aig, n, cut);
      if (!func) {
        continue;
      }
      ++stats.attempts;

      const std::uint32_t saved = gm.deref_mffc(n);
      std::vector<Signal> leaf_sigs;
      leaf_sigs.reserve(cut.leaves.size());
      for (const auto leaf : cut.leaves) {
        leaf_sigs.push_back(Signal(leaf, false));
      }
      const std::uint32_t first_new = aig.num_nodes();
      const Signal cand = build_factored(aig, *func, leaf_sigs);
      if (cand.node() == n) {
        // Factoring reproduced the same root: undo and move on.
        aig.pop_nodes_to(first_new);
        gm.ref_mffc(n);
        continue;
      }
      const std::uint32_t cost = gm.ref_candidate(cand);
      const auto gain =
          static_cast<std::int64_t>(saved) - static_cast<std::int64_t>(cost);
      const bool accept = gain > 0 || (gain == 0 && params.allow_zero_gain &&
                                       cand.node() < first_new);
      if (accept) {
        gm.commit(n, cand);
        stats.total_gain += gain;
        ++stats.commits;
        break; // node replaced; remaining cuts are stale
      }
      gm.unref_candidate(cand);
      gm.ref_mffc(n);
      if (aig.num_nodes() > first_new) {
        aig.pop_nodes_to(first_new);
      }
    }
  }
  return stats;
}

} // namespace rcgp::aig
