#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace rcgp::aig {

/// An edge in the AIG: node index plus complement flag, packed.
class Signal {
public:
  Signal() = default;
  Signal(std::uint32_t node, bool complemented)
      : code_((node << 1) | (complemented ? 1u : 0u)) {}

  static Signal from_code(std::uint32_t code) {
    Signal s;
    s.code_ = code;
    return s;
  }

  std::uint32_t node() const { return code_ >> 1; }
  bool complemented() const { return code_ & 1; }
  std::uint32_t code() const { return code_; }

  Signal operator!() const { return from_code(code_ ^ 1); }
  Signal operator^(bool c) const {
    return from_code(code_ ^ (c ? 1u : 0u));
  }
  bool operator==(const Signal&) const = default;
  bool operator<(const Signal& o) const { return code_ < o.code_; }

private:
  std::uint32_t code_ = 0;
};

/// And-inverter graph with structural hashing and lazy node replacement.
///
/// Node 0 is the constant-false node. Primary inputs follow, then AND
/// nodes in creation order — creation order is always a valid topological
/// order because a node's fanins must exist when it is created.
///
/// Replacement model: optimization passes call `replace(node, signal)`;
/// lookups resolve replacement chains, and `cleanup()` produces a compact
/// AIG with replacements applied and dead nodes removed.
class Aig {
public:
  struct Node {
    Signal fanin0; // valid only for AND nodes
    Signal fanin1;
    std::uint8_t kind; // 0 = const, 1 = PI, 2 = AND
  };

  enum : std::uint8_t { kConst = 0, kPi = 1, kAnd = 2 };

  Aig();

  Signal const0() const { return Signal(0, false); }
  Signal const1() const { return Signal(0, true); }

  Signal create_pi(const std::string& name = "");
  Signal create_and(Signal a, Signal b);

  Signal create_or(Signal a, Signal b) { return !create_and(!a, !b); }
  Signal create_xor(Signal a, Signal b);
  Signal create_mux(Signal sel, Signal t, Signal e);
  Signal create_maj(Signal a, Signal b, Signal c);

  /// Registers a primary output; returns its index.
  std::uint32_t add_po(Signal s, const std::string& name = "");
  void set_po(std::uint32_t index, Signal s) { pos_[index] = s; }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t num_pis() const {
    return static_cast<std::uint32_t>(pis_.size());
  }
  std::uint32_t num_pos() const {
    return static_cast<std::uint32_t>(pos_.size());
  }
  /// Number of AND nodes reachable from the POs (live area).
  std::uint32_t count_live_ands() const;

  bool is_const(std::uint32_t n) const { return nodes_[n].kind == kConst; }
  bool is_pi(std::uint32_t n) const { return nodes_[n].kind == kPi; }
  bool is_and(std::uint32_t n) const { return nodes_[n].kind == kAnd; }

  const Node& node(std::uint32_t n) const { return nodes_[n]; }
  Signal fanin0(std::uint32_t n) const { return resolve(nodes_[n].fanin0); }
  Signal fanin1(std::uint32_t n) const { return resolve(nodes_[n].fanin1); }

  std::uint32_t pi_at(std::uint32_t i) const { return pis_[i]; }
  /// PI input index of a PI node.
  std::uint32_t pi_index(std::uint32_t n) const { return pi_index_.at(n); }
  Signal po_at(std::uint32_t i) const { return resolve(pos_[i]); }
  const std::string& pi_name(std::uint32_t i) const { return pi_names_[i]; }
  const std::string& po_name(std::uint32_t i) const { return po_names_[i]; }
  void set_pi_name(std::uint32_t i, const std::string& n) { pi_names_[i] = n; }
  void set_po_name(std::uint32_t i, const std::string& n) { po_names_[i] = n; }

  /// Follows replacement chains to the current representative signal.
  Signal resolve(Signal s) const;

  /// Redirects `n` (an AND node) to `s`; future resolutions see `s`.
  void replace(std::uint32_t n, Signal s);
  bool is_replaced(std::uint32_t n) const { return repl_.count(n) != 0; }
  bool has_replacements() const { return !repl_.empty(); }

  /// Compact copy: applies replacements, drops unreachable nodes, rebuilds
  /// the structural-hash table. PI/PO order and names are preserved.
  Aig cleanup() const;

  /// Per-node logic level (PIs at 0); resolved graph, live nodes only have
  /// meaningful values. Recomputed from scratch.
  std::vector<std::uint32_t> compute_levels() const;
  std::uint32_t depth() const;

  /// Fanout reference counts on the resolved graph (POs count as fanouts).
  std::vector<std::uint32_t> compute_refs() const;

  /// Removes a node created speculatively (must be the most recent nodes,
  /// with no other references); used by rewriting rollback.
  void pop_nodes_to(std::uint32_t first_kept);

private:
  Signal strash_lookup_or_create(Signal a, Signal b);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pis_;
  std::vector<Signal> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint32_t, std::uint32_t> pi_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::unordered_map<std::uint32_t, Signal> repl_;
};

} // namespace rcgp::aig
