#include "aig/resyn.hpp"

#include "aig/balance.hpp"
#include "aig/refactor.hpp"
#include "aig/rewrite.hpp"

namespace rcgp::aig {

Aig resyn2(const Aig& input, ResynStats* stats) {
  Aig net = input.cleanup();
  if (stats) {
    stats->ands_before = net.count_live_ands();
    stats->depth_before = net.depth();
  }

  auto rw = [](Aig& a, bool zero) {
    RewriteParams p;
    p.allow_zero_gain = zero;
    rewrite_pass(a, p);
    a = a.cleanup();
  };
  auto rf = [](Aig& a, bool zero) {
    RefactorParams p;
    p.allow_zero_gain = zero;
    refactor_pass(a, p);
    a = a.cleanup();
  };

  net = balance(net);
  rw(net, false);
  rf(net, false);
  net = balance(net);
  rw(net, false);
  rw(net, true);
  net = balance(net);
  rf(net, true);
  rw(net, true);
  net = balance(net);

  if (stats) {
    stats->ands_after = net.count_live_ands();
    stats->depth_after = net.depth();
  }
  return net;
}

Aig optimize(const Aig& input, ResynStats* stats) {
  return resyn2(input, stats);
}

} // namespace rcgp::aig
