#include "aig/aig_simulate.hpp"

#include <stdexcept>

#include "rqfp/simd.hpp"

namespace rcgp::aig {

namespace {

/// table[v] = (ta ^ ca?) & (tb ^ cb?) through the dispatched and2 kernel.
/// The output slot never aliases the fanins (a strict topological AIG
/// reads only earlier nodes), and complement masks can set the unused
/// high bits of sub-word tables, hence the normalize().
void and2_into(const tt::TruthTable& ta, bool ca, const tt::TruthTable& tb,
               bool cb, tt::TruthTable& out) {
  rqfp::simd::kernels().and2(ta.data(), ca ? ~std::uint64_t{0} : 0,
                             tb.data(), cb ? ~std::uint64_t{0} : 0,
                             out.data(), out.num_words());
  out.normalize();
}

} // namespace

std::vector<tt::TruthTable> simulate(const Aig& aig) {
  if (aig.has_replacements()) {
    // Replacements can forward-reference later-created nodes; simulate a
    // compacted copy whose creation order is strictly topological.
    return simulate(aig.cleanup());
  }
  const unsigned n = aig.num_pis();
  if (n > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("aig::simulate: too many PIs for exhaustive");
  }
  std::vector<tt::TruthTable> table(aig.num_nodes(),
                                    tt::TruthTable::constant(n, false));
  for (std::uint32_t i = 0; i < n; ++i) {
    table[aig.pi_at(i)] = tt::TruthTable::projection(n, i);
  }
  for (std::uint32_t v = 0; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v) || aig.is_replaced(v)) {
      continue;
    }
    const Signal a = aig.fanin0(v);
    const Signal b = aig.fanin1(v);
    and2_into(table[a.node()], a.complemented(), table[b.node()],
              b.complemented(), table[v]);
  }
  std::vector<tt::TruthTable> out;
  out.reserve(aig.num_pos());
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    const Signal po = aig.po_at(i);
    out.push_back(po.complemented() ? ~table[po.node()] : table[po.node()]);
  }
  return out;
}

tt::TruthTable simulate_signal(const Aig& aig, Signal s) {
  // Cheap approach for occasional queries: simulate the whole graph once.
  // Forward references through replacements are handled by evaluating
  // nodes repeatedly until a fixed point (graphs are small when this is
  // used); the common no-replacement case needs a single sweep.
  const unsigned n = aig.num_pis();
  if (n > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("simulate_signal: too many PIs");
  }
  std::vector<tt::TruthTable> table(aig.num_nodes(),
                                    tt::TruthTable::constant(n, false));
  for (std::uint32_t i = 0; i < n; ++i) {
    table[aig.pi_at(i)] = tt::TruthTable::projection(n, i);
  }
  const unsigned max_sweeps = aig.has_replacements() ? aig.num_nodes() : 1;
  for (unsigned sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::uint32_t v = 0; v < aig.num_nodes(); ++v) {
      if (!aig.is_and(v) || aig.is_replaced(v)) {
        continue;
      }
      const Signal a = aig.fanin0(v);
      const Signal b = aig.fanin1(v);
      const tt::TruthTable ta =
          a.complemented() ? ~table[a.node()] : table[a.node()];
      const tt::TruthTable tb =
          b.complemented() ? ~table[b.node()] : table[b.node()];
      tt::TruthTable next = ta & tb;
      if (next != table[v]) {
        table[v] = std::move(next);
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  s = aig.resolve(s);
  return s.complemented() ? ~table[s.node()] : table[s.node()];
}

std::vector<std::vector<std::uint64_t>> simulate_patterns(
    const Aig& aig,
    const std::vector<std::vector<std::uint64_t>>& pi_patterns) {
  if (pi_patterns.size() != aig.num_pis()) {
    throw std::invalid_argument("simulate_patterns: PI count mismatch");
  }
  if (aig.has_replacements()) {
    return simulate_patterns(aig.cleanup(), pi_patterns);
  }
  const std::size_t words = pi_patterns.empty() ? 1 : pi_patterns[0].size();
  std::vector<std::vector<std::uint64_t>> value(
      aig.num_nodes(), std::vector<std::uint64_t>(words, 0));
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    if (pi_patterns[i].size() != words) {
      throw std::invalid_argument("simulate_patterns: ragged patterns");
    }
    value[aig.pi_at(i)] = pi_patterns[i];
  }
  for (std::uint32_t v = 0; v < aig.num_nodes(); ++v) {
    if (!aig.is_and(v) || aig.is_replaced(v)) {
      continue;
    }
    const Signal a = aig.fanin0(v);
    const Signal b = aig.fanin1(v);
    const auto& va = value[a.node()];
    const auto& vb = value[b.node()];
    auto& out = value[v];
    rqfp::simd::kernels().and2(va.data(),
                               a.complemented() ? ~std::uint64_t{0} : 0,
                               vb.data(),
                               b.complemented() ? ~std::uint64_t{0} : 0,
                               out.data(), words);
  }
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(aig.num_pos());
  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    const Signal po = aig.po_at(i);
    auto v = value[po.node()];
    if (po.complemented()) {
      for (auto& w : v) {
        w = ~w;
      }
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> random_patterns(std::uint32_t num_pis,
                                                        std::size_t num_words,
                                                        util::Rng& rng) {
  std::vector<std::vector<std::uint64_t>> p(num_pis);
  for (auto& row : p) {
    row.resize(num_words);
    for (auto& w : row) {
      w = rng.next();
    }
  }
  return p;
}

} // namespace rcgp::aig
