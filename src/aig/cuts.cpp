#include "aig/cuts.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rcgp::aig {

bool Cut::dominates(const Cut& other) const {
  // `this` dominates `other` if this->leaves ⊆ other.leaves.
  return std::includes(other.leaves.begin(), other.leaves.end(),
                       leaves.begin(), leaves.end());
}

namespace {

/// Merge two sorted leaf sets; returns false if the union exceeds `limit`.
bool merge_leaves(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, unsigned limit,
                  std::vector<std::uint32_t>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    std::uint32_t next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) {
        ++j;
      }
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    if (out.size() == limit) {
      return false;
    }
    out.push_back(next);
  }
  return true;
}

void add_cut_filtered(std::vector<Cut>& cuts, Cut cut, unsigned max_cuts) {
  // Drop if dominated by an existing cut; remove cuts it dominates.
  for (const auto& c : cuts) {
    if (c.dominates(cut)) {
      return;
    }
  }
  cuts.erase(std::remove_if(cuts.begin(), cuts.end(),
                            [&](const Cut& c) { return cut.dominates(c); }),
             cuts.end());
  if (cuts.size() < max_cuts) {
    cuts.push_back(std::move(cut));
  }
}

} // namespace

std::vector<std::vector<Cut>> enumerate_cuts(const Aig& aig,
                                             const CutParams& params) {
  std::vector<std::vector<Cut>> cuts(aig.num_nodes());
  cuts[0].push_back(Cut{{0}});
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    cuts[aig.pi_at(i)].push_back(Cut{{aig.pi_at(i)}});
  }
  std::vector<std::uint32_t> merged;
  for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
    if (!aig.is_and(n) || aig.is_replaced(n)) {
      continue;
    }
    const std::uint32_t a = aig.fanin0(n).node();
    const std::uint32_t b = aig.fanin1(n).node();
    auto& mine = cuts[n];
    for (const auto& ca : cuts[a]) {
      for (const auto& cb : cuts[b]) {
        if (!merge_leaves(ca.leaves, cb.leaves, params.max_leaves, merged)) {
          continue;
        }
        add_cut_filtered(mine, Cut{merged}, params.max_cuts_per_node);
      }
    }
    // Trivial cut last, always present.
    mine.push_back(Cut{{n}});
  }
  return cuts;
}

tt::TruthTable cut_function(const Aig& aig, std::uint32_t root,
                            const Cut& cut) {
  const auto k = static_cast<unsigned>(cut.leaves.size());
  std::unordered_map<std::uint32_t, tt::TruthTable> memo;
  for (unsigned i = 0; i < k; ++i) {
    memo[cut.leaves[i]] = tt::TruthTable::projection(k, i);
  }
  // The constant node may appear as a leaf only in degenerate cones; give
  // it its semantics if not already a leaf.
  if (!memo.count(0)) {
    memo[0] = tt::TruthTable::constant(k, false);
  }

  // Iterative post-order evaluation.
  std::vector<std::uint32_t> stack{root};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (memo.count(n)) {
      stack.pop_back();
      continue;
    }
    if (!aig.is_and(n)) {
      throw std::invalid_argument("cut_function: cone escapes the cut");
    }
    const std::uint32_t a = aig.fanin0(n).node();
    const std::uint32_t b = aig.fanin1(n).node();
    bool ready = true;
    if (!memo.count(a)) {
      stack.push_back(a);
      ready = false;
    }
    if (!memo.count(b)) {
      stack.push_back(b);
      ready = false;
    }
    if (!ready) {
      continue;
    }
    stack.pop_back();
    const Signal sa = aig.fanin0(n);
    const Signal sb = aig.fanin1(n);
    const tt::TruthTable ta =
        sa.complemented() ? ~memo[sa.node()] : memo[sa.node()];
    const tt::TruthTable tb =
        sb.complemented() ? ~memo[sb.node()] : memo[sb.node()];
    memo[n] = ta & tb;
  }
  return memo[root];
}

Cut reconvergent_cut(const Aig& aig, std::uint32_t root, unsigned max_leaves) {
  // Start with the fanins of root, repeatedly expand the leaf whose
  // expansion adds the fewest new leaves (cost = #fanins not already
  // leaves, minus one for the leaf removed).
  std::vector<std::uint32_t> leaves;
  auto add_leaf = [&](std::uint32_t n) {
    if (std::find(leaves.begin(), leaves.end(), n) == leaves.end()) {
      leaves.push_back(n);
    }
  };
  if (!aig.is_and(root)) {
    return Cut{{root}};
  }
  add_leaf(aig.fanin0(root).node());
  add_leaf(aig.fanin1(root).node());

  for (;;) {
    int best_cost = 1000;
    int best_index = -1;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const std::uint32_t n = leaves[i];
      if (!aig.is_and(n)) {
        continue;
      }
      const std::uint32_t a = aig.fanin0(n).node();
      const std::uint32_t b = aig.fanin1(n).node();
      int cost = -1; // removing n
      if (std::find(leaves.begin(), leaves.end(), a) == leaves.end()) {
        ++cost;
      }
      if (a != b &&
          std::find(leaves.begin(), leaves.end(), b) == leaves.end()) {
        ++cost;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) {
      break; // all leaves are PIs/constants
    }
    if (leaves.size() + static_cast<std::size_t>(std::max(0, best_cost)) >
        max_leaves) {
      break;
    }
    const std::uint32_t n = leaves[static_cast<std::size_t>(best_index)];
    leaves.erase(leaves.begin() + best_index);
    add_leaf(aig.fanin0(n).node());
    add_leaf(aig.fanin1(n).node());
  }
  std::sort(leaves.begin(), leaves.end());
  return Cut{std::move(leaves)};
}

} // namespace rcgp::aig
