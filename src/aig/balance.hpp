#pragma once

#include "aig/aig.hpp"

namespace rcgp::aig {

/// Algebraic tree balancing (ABC `balance`-style): rebuilds the AIG with
/// every maximal AND-tree re-associated into a minimum-depth tree (operands
/// combined lowest-level first). Structural hashing in the rebuilt network
/// also removes duplicated structure. Returns the balanced network.
Aig balance(const Aig& input);

} // namespace rcgp::aig
