#pragma once

#include <cstdint>

#include "aig/aig.hpp"

namespace rcgp::aig {

struct FraigParams {
  /// 64-bit words of random simulation per PI used to form candidate
  /// equivalence classes (more words = fewer spurious SAT calls).
  std::size_t sim_words = 16;
  std::uint64_t seed = 1;
  /// Conflict budget per pairwise SAT proof (0 = unlimited).
  std::uint64_t max_conflicts_per_pair = 10000;
};

struct FraigStats {
  std::uint32_t candidate_pairs = 0;
  std::uint32_t proved_equivalent = 0;
  std::uint32_t disproved = 0;
  std::uint32_t undecided = 0;
  std::uint32_t ands_before = 0;
  std::uint32_t ands_after = 0;
};

/// SAT sweeping (FRAIG-style redundancy removal): random simulation
/// partitions nodes into candidate equivalence classes (up to
/// complementation); a CDCL miter proof confirms each candidate, and
/// proven-equivalent nodes are merged. The result is functionally
/// equivalent to the input with structural redundancy beyond strashing
/// removed.
Aig fraig(const Aig& input, const FraigParams& params = {},
          FraigStats* stats = nullptr);

} // namespace rcgp::aig
