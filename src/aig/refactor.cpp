#include "aig/refactor.hpp"

namespace rcgp::aig {

PassStats refactor_pass(Aig& aig, const RefactorParams& params) {
  PassStats stats;
  GainManager gm(aig);
  const std::uint32_t original_count = aig.num_nodes();

  for (std::uint32_t n = 0; n < original_count; ++n) {
    if (!aig.is_and(n) || aig.is_replaced(n) || gm.refs(n) == 0) {
      continue;
    }
    const Cut cut = reconvergent_cut(aig, n, params.max_leaves);
    if (cut.leaves.size() < 2 || cut.leaves.size() > params.max_leaves) {
      continue;
    }
    const auto func = try_cut_function(aig, n, cut);
    if (!func) {
      continue;
    }
    ++stats.attempts;

    const std::uint32_t saved = gm.deref_mffc(n);
    std::vector<Signal> leaf_sigs;
    leaf_sigs.reserve(cut.leaves.size());
    for (const auto leaf : cut.leaves) {
      leaf_sigs.push_back(Signal(leaf, false));
    }
    const std::uint32_t first_new = aig.num_nodes();
    const Signal cand = build_factored(aig, *func, leaf_sigs);
    if (cand.node() == n) {
      aig.pop_nodes_to(first_new);
      gm.ref_mffc(n);
      continue;
    }
    const std::uint32_t cost = gm.ref_candidate(cand);
    const auto gain =
        static_cast<std::int64_t>(saved) - static_cast<std::int64_t>(cost);
    const bool accept = gain > 0 || (gain == 0 && params.allow_zero_gain &&
                                     cand.node() < first_new);
    if (accept) {
      gm.commit(n, cand);
      stats.total_gain += gain;
      ++stats.commits;
      continue;
    }
    gm.unref_candidate(cand);
    gm.ref_mffc(n);
    if (aig.num_nodes() > first_new) {
      aig.pop_nodes_to(first_new);
    }
  }
  return stats;
}

} // namespace rcgp::aig
