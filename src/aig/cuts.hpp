#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::aig {

/// A k-feasible cut: sorted leaf node ids. The cut's cone is the set of
/// nodes between the root and the leaves.
struct Cut {
  std::vector<std::uint32_t> leaves; // sorted, unique node ids

  bool operator==(const Cut&) const = default;
  /// True if `other`'s leaves are a subset of ours (we are dominated).
  bool dominates(const Cut& other) const;
};

struct CutParams {
  unsigned max_leaves = 4;
  unsigned max_cuts_per_node = 12; // priority cuts
};

/// Bottom-up k-cut enumeration over the resolved live graph. Result is
/// indexed by node id; PIs/constants get their trivial cut only. The
/// trivial cut {n} is always the last entry of each node's list.
std::vector<std::vector<Cut>> enumerate_cuts(const Aig& aig,
                                             const CutParams& params);

/// Truth table of `root`'s function over the leaves of `cut` (leaf i maps
/// to variable i). Cut cone must be a legal cut of root.
tt::TruthTable cut_function(const Aig& aig, std::uint32_t root,
                            const Cut& cut);

/// Reconvergence-driven cut: greedily expands from `root` keeping at most
/// `max_leaves` leaves; used by refactoring.
Cut reconvergent_cut(const Aig& aig, std::uint32_t root, unsigned max_leaves);

} // namespace rcgp::aig
