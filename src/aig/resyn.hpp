#pragma once

#include <string>

#include "aig/aig.hpp"

namespace rcgp::aig {

struct ResynStats {
  std::uint32_t ands_before = 0;
  std::uint32_t ands_after = 0;
  std::uint32_t depth_before = 0;
  std::uint32_t depth_after = 0;
};

/// ABC `resyn2`-style optimization script:
///   balance; rewrite; refactor; balance; rewrite; rewrite -z;
///   balance; refactor -z; rewrite -z; balance.
/// Returns the optimized network (input is not modified).
Aig resyn2(const Aig& input, ResynStats* stats = nullptr);

/// Single convenience entry point used by the RCGP flow.
Aig optimize(const Aig& input, ResynStats* stats = nullptr);

} // namespace rcgp::aig
