#include "aig/balance.hpp"

#include <algorithm>
#include <vector>

namespace rcgp::aig {

namespace {

/// Collect the operand signals of the maximal single-fanout AND tree rooted
/// at `s` (in the old network). A fanin is a tree operand (not expanded)
/// when it is complemented, not an AND, or referenced more than once.
void collect_operands(const Aig& aig, Signal s,
                      const std::vector<std::uint32_t>& refs,
                      std::vector<Signal>& out) {
  const std::uint32_t n = s.node();
  if (s.complemented() || !aig.is_and(n) || refs[n] > 1) {
    out.push_back(s);
    return;
  }
  collect_operands(aig, aig.fanin0(n), refs, out);
  collect_operands(aig, aig.fanin1(n), refs, out);
}

} // namespace

Aig balance(const Aig& input) {
  const Aig aig = input.cleanup(); // resolve replacements, drop dead nodes
  const auto refs = aig.compute_refs();

  Aig out;
  std::vector<Signal> map(aig.num_nodes(), Signal());
  std::vector<std::uint32_t> out_level; // level per new node id
  out_level.resize(1, 0);               // constant node
  map[0] = out.const0();
  for (std::uint32_t i = 0; i < aig.num_pis(); ++i) {
    map[aig.pi_at(i)] = out.create_pi(aig.pi_name(i));
    out_level.resize(out.num_nodes(), 0);
  }

  auto level_of = [&](Signal s) {
    return s.node() < out_level.size() ? out_level[s.node()] : 0u;
  };
  auto record_level = [&](Signal s, std::uint32_t lv) {
    if (s.node() >= out_level.size()) {
      out_level.resize(s.node() + 1, 0);
    }
    out_level[s.node()] = std::max(out_level[s.node()], lv);
  };

  // Nodes are processed in topological (creation) order; tree roots are
  // nodes referenced >1 time, feeding a complemented edge, or driving a PO.
  for (std::uint32_t n = 0; n < aig.num_nodes(); ++n) {
    if (!aig.is_and(n)) {
      continue;
    }
    // Build each AND node; single-fanout pure-AND fanins are inlined into
    // the operand list, so intermediate tree nodes get rebuilt only when
    // they are themselves roots — harmless extra work otherwise.
    std::vector<Signal> ops;
    collect_operands(aig, aig.fanin0(n), refs, ops);
    collect_operands(aig, aig.fanin1(n), refs, ops);
    std::vector<Signal> mapped;
    mapped.reserve(ops.size());
    for (const Signal op : ops) {
      mapped.push_back(map[op.node()] ^ op.complemented());
    }
    // Huffman-style pairing: repeatedly AND the two lowest-level operands.
    while (mapped.size() > 1) {
      std::sort(mapped.begin(), mapped.end(), [&](Signal a, Signal b) {
        return level_of(a) > level_of(b); // descending; take from the back
      });
      const Signal a = mapped.back();
      mapped.pop_back();
      const Signal b = mapped.back();
      mapped.pop_back();
      const Signal c = out.create_and(a, b);
      record_level(c, 1 + std::max(level_of(a), level_of(b)));
      mapped.push_back(c);
    }
    map[n] = mapped.empty() ? out.const1() : mapped[0];
  }

  for (std::uint32_t i = 0; i < aig.num_pos(); ++i) {
    const Signal po = aig.po_at(i);
    out.add_po(map[po.node()] ^ po.complemented(), aig.po_name(i));
  }
  return out.cleanup();
}

} // namespace rcgp::aig
