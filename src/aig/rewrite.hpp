#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::aig {

struct PassStats {
  std::uint32_t attempts = 0;
  std::uint32_t commits = 0;
  std::int64_t total_gain = 0; // live AND nodes removed
};

struct RewriteParams {
  unsigned max_leaves = 4;
  unsigned max_cuts_per_node = 12;
  bool allow_zero_gain = false;
};

/// Reference-count bookkeeping for DAG-aware replacement: measures the
/// exact change in live node count when a root is replaced by a candidate
/// cone, with commit/rollback semantics.
class GainManager {
public:
  explicit GainManager(Aig& aig);

  /// Dereferences root's cone (MFFC) and returns the number of AND nodes
  /// that would be freed if `root` were replaced (including root itself).
  std::uint32_t deref_mffc(std::uint32_t root);

  /// Number of currently-dead AND nodes that become live if `s` gains a
  /// reference; references them as a side effect.
  std::uint32_t ref_candidate(Signal s);

  /// Undo ref_candidate.
  void unref_candidate(Signal s);

  /// Undo deref_mffc.
  void ref_mffc(std::uint32_t root);

  /// Transfer root's external references to the candidate and record the
  /// replacement in the AIG. Call after deref_mffc + ref_candidate.
  void commit(std::uint32_t root, Signal candidate);

  std::uint32_t refs(std::uint32_t n) const {
    return n < refs_.size() ? refs_[n] : 0;
  }

private:
  std::uint32_t& ref_slot(std::uint32_t n);
  std::uint32_t deref_rec(std::uint32_t n);
  std::uint32_t ref_rec(std::uint32_t n);

  Aig& aig_;
  std::vector<std::uint32_t> refs_;
};

/// Cut function that returns nullopt when the cone escapes the cut (can
/// happen when precomputed cuts go stale after replacements).
std::optional<tt::TruthTable> try_cut_function(const Aig& aig,
                                               std::uint32_t root,
                                               const Cut& cut);

/// Builds an AIG for `function` over `leaf_signals` using ISOP-based
/// algebraic factoring (better polarity chosen automatically).
Signal build_factored(Aig& aig, const tt::TruthTable& function,
                      std::span<const Signal> leaf_signals);

/// DAG-aware cut rewriting (ABC `rewrite`-style): for every live AND node,
/// tries to re-express each enumerated cut with a factored form and commits
/// when the net live-node count drops.
PassStats rewrite_pass(Aig& aig, const RewriteParams& params = {});

} // namespace rcgp::aig
