#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::aig {

/// Exhaustive simulation: truth table of every primary output over the
/// AIG's primary inputs. Requires num_pis() <= TruthTable::kMaxVars.
std::vector<tt::TruthTable> simulate(const Aig& aig);

/// Truth table of a single internal signal over the primary inputs.
tt::TruthTable simulate_signal(const Aig& aig, Signal s);

/// Word-parallel random-pattern simulation for wide circuits: each PI gets
/// `num_words` 64-bit random words; returns one pattern vector per PO.
std::vector<std::vector<std::uint64_t>> simulate_patterns(
    const Aig& aig, const std::vector<std::vector<std::uint64_t>>& pi_patterns);

/// Generates `num_words` random words per PI.
std::vector<std::vector<std::uint64_t>> random_patterns(std::uint32_t num_pis,
                                                        std::size_t num_words,
                                                        util::Rng& rng);

} // namespace rcgp::aig
