#pragma once

#include "aig/rewrite.hpp"

namespace rcgp::aig {

struct RefactorParams {
  unsigned max_leaves = 10;
  bool allow_zero_gain = false;
};

/// Cone refactoring (ABC `refactor`-style): for every live AND node,
/// computes a reconvergence-driven cut, re-synthesizes the cone as an
/// ISOP-factored form, and commits when the net live-node count drops.
/// Cuts are recomputed on the current structure, so the pass is robust to
/// its own replacements.
PassStats refactor_pass(Aig& aig, const RefactorParams& params = {});

} // namespace rcgp::aig
