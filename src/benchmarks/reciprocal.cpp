#include "benchmarks/reciprocal.hpp"

#include <stdexcept>

namespace rcgp::benchmarks {

Benchmark reciprocal(unsigned bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("reciprocal: bits out of range [2,16]");
  }
  Benchmark b;
  b.name = "intdiv" + std::to_string(bits);
  b.num_pis = bits;
  b.num_pos = bits;
  b.spec.assign(bits, tt::TruthTable(bits));
  const std::uint64_t top = (std::uint64_t{1} << bits) - 1;
  for (std::uint64_t x = 0; x <= top; ++x) {
    const std::uint64_t y = x == 0 ? 0 : top / x;
    for (unsigned o = 0; o < bits; ++o) {
      if ((y >> o) & 1) {
        b.spec[o].set_bit(x, true);
      }
    }
  }
  for (unsigned o = 0; o < bits; ++o) {
    b.po_names.push_back("q" + std::to_string(o));
  }
  return b;
}

} // namespace rcgp::benchmarks
