#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace rcgp::benchmarks {

/// A named combinational specification: one truth table per output over
/// `num_pis` inputs (input bit i of an assignment is PI i).
struct Benchmark {
  std::string name;
  unsigned num_pis = 0;
  unsigned num_pos = 0;
  std::vector<tt::TruthTable> spec;
  std::vector<std::string> po_names;
};

/// Look up a benchmark by name; throws std::invalid_argument if unknown.
/// Available names: Table 1 — full_adder, 4gt10, alu, c17, decoder_2_4,
/// decoder_3_8, graycode4, ham3, mux4; Table 2 — 4_49, graycode6,
/// mod5adder, hwb8, intdiv4..intdiv10.
Benchmark get(const std::string& name);

std::vector<std::string> all_names();
/// The small circuits of the paper's Table 1, in table order.
std::vector<std::string> table1_names();
/// The large circuits of the paper's Table 2, in table order.
std::vector<std::string> table2_names();

/// Builds a benchmark from an arbitrary output-value function:
/// outputs(x) returns the PO word for input assignment x.
Benchmark from_function(const std::string& name, unsigned num_pis,
                        unsigned num_pos,
                        std::uint64_t (*outputs)(std::uint64_t));

// ---- individual generators (also used directly in tests) ----
Benchmark full_adder();
Benchmark gt10_4();        // "4gt10"
Benchmark alu();
Benchmark c17();
Benchmark decoder(unsigned select_bits); // decoder_2_4, decoder_3_8
Benchmark graycode(unsigned bits);       // graycode4, graycode6
Benchmark ham3();
Benchmark mux4();
Benchmark perm_4_49();     // "4_49"
Benchmark mod5adder();
Benchmark hwb(unsigned bits); // hwb8

} // namespace rcgp::benchmarks
