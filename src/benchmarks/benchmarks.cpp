#include "benchmarks/benchmarks.hpp"

#include <bit>
#include <stdexcept>

#include "benchmarks/reciprocal.hpp"

namespace rcgp::benchmarks {

Benchmark from_function(const std::string& name, unsigned num_pis,
                        unsigned num_pos,
                        std::uint64_t (*outputs)(std::uint64_t)) {
  Benchmark b;
  b.name = name;
  b.num_pis = num_pis;
  b.num_pos = num_pos;
  b.spec.assign(num_pos, tt::TruthTable(num_pis));
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << num_pis); ++x) {
    const std::uint64_t y = outputs(x);
    for (unsigned o = 0; o < num_pos; ++o) {
      if ((y >> o) & 1) {
        b.spec[o].set_bit(x, true);
      }
    }
  }
  b.po_names.reserve(num_pos);
  for (unsigned o = 0; o < num_pos; ++o) {
    b.po_names.push_back("y" + std::to_string(o));
  }
  return b;
}

Benchmark full_adder() {
  return from_function("full_adder", 3, 2, [](std::uint64_t x) {
    const unsigned a = x & 1;
    const unsigned b = (x >> 1) & 1;
    const unsigned cin = (x >> 2) & 1;
    const unsigned sum = a ^ b ^ cin;
    const unsigned cout = (a & b) | (a & cin) | (b & cin);
    return static_cast<std::uint64_t>(sum | (cout << 1));
  });
}

Benchmark gt10_4() {
  // RevLib 4gt10: single output, true iff the 4-bit input value exceeds 10.
  return from_function("4gt10", 4, 1, [](std::uint64_t x) {
    return static_cast<std::uint64_t>(x > 10 ? 1 : 0);
  });
}

Benchmark alu() {
  // 1-bit ALU slice (documented substitution for RevLib's 5-input/1-output
  // "alu"): inputs (s1, s0, a, b, cin); output selected by (s1,s0):
  //   00 -> full-adder sum a^b^cin   01 -> a & b
  //   10 -> a | b                    11 -> a ^ b
  return from_function("alu", 5, 1, [](std::uint64_t x) {
    const unsigned s1 = x & 1;
    const unsigned s0 = (x >> 1) & 1;
    const unsigned a = (x >> 2) & 1;
    const unsigned b = (x >> 3) & 1;
    const unsigned cin = (x >> 4) & 1;
    unsigned out = 0;
    switch ((s1 << 1) | s0) {
      case 0: out = a ^ b ^ cin; break;
      case 1: out = a & b; break;
      case 2: out = a | b; break;
      case 3: out = a ^ b; break;
    }
    return static_cast<std::uint64_t>(out);
  });
}

Benchmark c17() {
  // ISCAS-85 c17: six NAND2 gates, exact netlist.
  return from_function("c17", 5, 2, [](std::uint64_t x) {
    const unsigned i1 = x & 1;
    const unsigned i2 = (x >> 1) & 1;
    const unsigned i3 = (x >> 2) & 1;
    const unsigned i6 = (x >> 3) & 1;
    const unsigned i7 = (x >> 4) & 1;
    const unsigned n10 = 1 ^ (i1 & i3);
    const unsigned n11 = 1 ^ (i3 & i6);
    const unsigned n16 = 1 ^ (i2 & n11);
    const unsigned n19 = 1 ^ (n11 & i7);
    const unsigned o22 = 1 ^ (n10 & n16);
    const unsigned o23 = 1 ^ (n16 & n19);
    return static_cast<std::uint64_t>(o22 | (o23 << 1));
  });
}

Benchmark decoder(unsigned select_bits) {
  Benchmark b;
  const unsigned outs = 1u << select_bits;
  b.name = "decoder_" + std::to_string(select_bits) + "_" +
           std::to_string(outs);
  b.num_pis = select_bits;
  b.num_pos = outs;
  b.spec.assign(outs, tt::TruthTable(select_bits));
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << select_bits); ++x) {
    b.spec[x].set_bit(x, true);
  }
  for (unsigned o = 0; o < outs; ++o) {
    b.po_names.push_back("y" + std::to_string(o));
  }
  return b;
}

Benchmark graycode(unsigned bits) {
  Benchmark b;
  b.name = "graycode" + std::to_string(bits);
  b.num_pis = bits;
  b.num_pos = bits;
  b.spec.assign(bits, tt::TruthTable(bits));
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << bits); ++x) {
    const std::uint64_t g = x ^ (x >> 1);
    for (unsigned o = 0; o < bits; ++o) {
      if ((g >> o) & 1) {
        b.spec[o].set_bit(x, true);
      }
    }
  }
  for (unsigned o = 0; o < bits; ++o) {
    b.po_names.push_back("g" + std::to_string(o));
  }
  return b;
}

Benchmark ham3() {
  // 3-bit reversible permutation (documented substitution for RevLib ham3):
  // x -> (3x + 1) mod 8, a fixed bijection on {0..7}.
  return from_function("ham3", 3, 3, [](std::uint64_t x) {
    return (3 * x + 1) & 7;
  });
}

Benchmark mux4() {
  // 4:1 multiplexer: data d0..d3 on PIs 0..3, select s0,s1 on PIs 4,5.
  return from_function("mux4", 6, 1, [](std::uint64_t x) {
    const unsigned sel =
        static_cast<unsigned>(((x >> 4) & 1) | (((x >> 5) & 1) << 1));
    return (x >> sel) & 1;
  });
}

Benchmark perm_4_49() {
  // 4-bit reversible permutation standing in for RevLib benchmark 4_49
  // (the exact RevLib table is not redistributable offline; this fixed
  // bijection has comparable mixing).
  static const unsigned table[16] = {15, 1, 12, 3, 5,  6, 8,  7,
                                     0,  10, 13, 9, 2, 4, 14, 11};
  return from_function("4_49", 4, 4, [](std::uint64_t x) {
    return static_cast<std::uint64_t>(table[x & 15]);
  });
}

Benchmark mod5adder() {
  // Adder modulo 5 (documented RevLib-style semantics): inputs a (PIs
  // 0..2) and b (PIs 3..5); outputs pass a through and produce
  // (a + b) mod 5 when both operands are in range, else b unchanged.
  return from_function("mod5adder", 6, 6, [](std::uint64_t x) {
    const std::uint64_t a = x & 7;
    const std::uint64_t b = (x >> 3) & 7;
    const std::uint64_t lo = (a < 5 && b < 5) ? (a + b) % 5 : b;
    return lo | (a << 3);
  });
}

Benchmark hwb(unsigned bits) {
  // Hidden weighted bit: rotate the input left by its Hamming weight.
  Benchmark b;
  b.name = "hwb" + std::to_string(bits);
  b.num_pis = bits;
  b.num_pos = bits;
  b.spec.assign(bits, tt::TruthTable(bits));
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << bits); ++x) {
    const unsigned w =
        static_cast<unsigned>(std::popcount(x)) % bits;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    const std::uint64_t y = ((x << w) | (x >> (bits - w))) & mask;
    for (unsigned o = 0; o < bits; ++o) {
      if ((y >> o) & 1) {
        b.spec[o].set_bit(x, true);
      }
    }
  }
  for (unsigned o = 0; o < bits; ++o) {
    b.po_names.push_back("y" + std::to_string(o));
  }
  return b;
}

Benchmark get(const std::string& name) {
  if (name == "full_adder") return full_adder();
  if (name == "4gt10") return gt10_4();
  if (name == "alu") return alu();
  if (name == "c17") return c17();
  if (name == "decoder_2_4") return decoder(2);
  if (name == "decoder_3_8") return decoder(3);
  if (name == "graycode4") return graycode(4);
  if (name == "graycode6") return graycode(6);
  if (name == "ham3") return ham3();
  if (name == "mux4") return mux4();
  if (name == "4_49") return perm_4_49();
  if (name == "mod5adder") return mod5adder();
  if (name == "hwb8") return hwb(8);
  if (name.rfind("intdiv", 0) == 0) {
    const unsigned bits = static_cast<unsigned>(std::stoul(name.substr(6)));
    return reciprocal(bits);
  }
  if (name.rfind("hwb", 0) == 0) {
    const unsigned bits = static_cast<unsigned>(std::stoul(name.substr(3)));
    return hwb(bits);
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

std::vector<std::string> table1_names() {
  return {"full_adder", "4gt10",     "alu",       "c17",  "decoder_2_4",
          "decoder_3_8", "graycode4", "ham3",      "mux4"};
}

std::vector<std::string> table2_names() {
  return {"4_49",    "graycode6", "mod5adder", "hwb8",    "intdiv4",
          "intdiv5", "intdiv6",   "intdiv7",   "intdiv8", "intdiv9",
          "intdiv10"};
}

std::vector<std::string> all_names() {
  auto names = table1_names();
  for (auto& n : table2_names()) {
    names.push_back(n);
  }
  return names;
}

} // namespace rcgp::benchmarks
