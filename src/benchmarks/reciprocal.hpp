#pragma once

#include "benchmarks/benchmarks.hpp"

namespace rcgp::benchmarks {

/// Reversible reciprocal / integer-division circuits ("intdivN" rows of the
/// paper's Table 2, after Soeken et al., DATE'17). The paper's circuits
/// compute a fixed-point reciprocal; this generator uses the documented
/// substitution f(x) = floor((2^bits - 1) / x) for x > 0 and f(0) = 0,
/// which exercises the same wide, deep arithmetic structure.
Benchmark reciprocal(unsigned bits);

} // namespace rcgp::benchmarks
