#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace rcgp::sat {

/// A CNF formula in portable form, for DIMACS interchange and testing.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses; // DIMACS literals, no trailing 0
};

/// Parses DIMACS CNF from a stream. Throws std::runtime_error on syntax
/// errors or literal/variable-count inconsistencies.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);

void write_dimacs(const Cnf& cnf, std::ostream& out);

/// Loads a Cnf into a fresh area of `solver` (allocating vars as needed)
/// and returns true unless the formula is trivially inconsistent.
bool load_into_solver(const Cnf& cnf, Solver& solver);

} // namespace rcgp::sat
