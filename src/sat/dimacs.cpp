#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rcgp::sat {

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string line;
  bool header_seen = false;
  std::size_t declared_clauses = 0;
  std::vector<int> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      hs >> p >> fmt >> cnf.num_vars >> declared_clauses;
      if (!hs || fmt != "cnf" || cnf.num_vars < 0) {
        throw std::runtime_error("dimacs: malformed problem line");
      }
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      throw std::runtime_error("dimacs: clause before problem line");
    }
    std::istringstream ls(line);
    int lit = 0;
    while (ls >> lit) {
      if (lit == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        if (std::abs(lit) > cnf.num_vars) {
          throw std::runtime_error("dimacs: literal out of declared range");
        }
        current.push_back(lit);
      }
    }
  }
  if (!current.empty()) {
    cnf.clauses.push_back(current); // tolerate missing trailing 0
  }
  if (!header_seen) {
    throw std::runtime_error("dimacs: missing problem line");
  }
  if (declared_clauses != 0 && cnf.clauses.size() != declared_clauses) {
    // Tolerated by most tools; keep lenient but consistent.
  }
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const int lit : clause) {
      out << lit << ' ';
    }
    out << "0\n";
  }
}

bool load_into_solver(const Cnf& cnf, Solver& solver) {
  const int base = solver.num_vars();
  for (int i = 0; i < cnf.num_vars; ++i) {
    solver.new_var();
  }
  std::vector<Lit> lits;
  for (const auto& clause : cnf.clauses) {
    lits.clear();
    for (const int d : clause) {
      const Lit l = Lit::from_dimacs(d);
      lits.push_back(Lit(base + l.var(), l.negated()));
    }
    if (!solver.add_clause(std::span<const Lit>(lits))) {
      return false;
    }
  }
  return true;
}

} // namespace rcgp::sat
