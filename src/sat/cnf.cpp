#include "sat/cnf.hpp"

namespace rcgp::sat {

Lit CnfBuilder::true_lit() {
  if (true_var_ < 0) {
    true_var_ = solver_.new_var();
    solver_.add_clause({Lit(true_var_, false)});
  }
  return Lit(true_var_, false);
}

Lit CnfBuilder::make_and(Lit a, Lit b) {
  const Lit y = new_lit();
  solver_.add_clause({~y, a});
  solver_.add_clause({~y, b});
  solver_.add_clause({y, ~a, ~b});
  return y;
}

Lit CnfBuilder::make_or(Lit a, Lit b) { return ~make_and(~a, ~b); }

Lit CnfBuilder::make_xor(Lit a, Lit b) {
  const Lit y = new_lit();
  solver_.add_clause({~y, a, b});
  solver_.add_clause({~y, ~a, ~b});
  solver_.add_clause({y, ~a, b});
  solver_.add_clause({y, a, ~b});
  return y;
}

Lit CnfBuilder::make_maj(Lit a, Lit b, Lit c) {
  const Lit y = new_lit();
  // y <-> at least two of {a,b,c}.
  solver_.add_clause({~y, a, b});
  solver_.add_clause({~y, a, c});
  solver_.add_clause({~y, b, c});
  solver_.add_clause({y, ~a, ~b});
  solver_.add_clause({y, ~a, ~c});
  solver_.add_clause({y, ~b, ~c});
  return y;
}

Lit CnfBuilder::make_mux(Lit sel, Lit t, Lit e) {
  const Lit y = new_lit();
  solver_.add_clause({~y, ~sel, t});
  solver_.add_clause({~y, sel, e});
  solver_.add_clause({y, ~sel, ~t});
  solver_.add_clause({y, sel, ~e});
  return y;
}

Lit CnfBuilder::make_and(std::span<const Lit> lits) {
  if (lits.empty()) {
    return true_lit();
  }
  if (lits.size() == 1) {
    return lits[0];
  }
  const Lit y = new_lit();
  std::vector<Lit> big;
  big.reserve(lits.size() + 1);
  big.push_back(y);
  for (const Lit l : lits) {
    solver_.add_clause({~y, l});
    big.push_back(~l);
  }
  solver_.add_clause(std::span<const Lit>(big));
  return y;
}

Lit CnfBuilder::make_or(std::span<const Lit> lits) {
  std::vector<Lit> negs;
  negs.reserve(lits.size());
  for (const Lit l : lits) {
    negs.push_back(~l);
  }
  return ~make_and(std::span<const Lit>(negs));
}

void CnfBuilder::assert_equal(Lit a, Lit b) {
  solver_.add_clause({~a, b});
  solver_.add_clause({a, ~b});
}

void CnfBuilder::at_most_one(std::span<const Lit> lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      solver_.add_clause({~lits[i], ~lits[j]});
    }
  }
}

void CnfBuilder::exactly_one(std::span<const Lit> lits) {
  std::vector<Lit> all(lits.begin(), lits.end());
  solver_.add_clause(std::span<const Lit>(all));
  at_most_one(lits);
}

} // namespace rcgp::sat
