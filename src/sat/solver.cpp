#include "sat/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"

namespace rcgp::sat {

namespace {
constexpr int kNoReason = -1;
constexpr std::uint64_t kRestartBase = 64;
} // namespace

std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence containing index i and its position.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

Solver::Solver() = default;

int Solver::new_var() {
  const int v = static_cast<int>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(false);
  var_level_.push_back(0);
  var_reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_index_.push_back(-1);
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  if (!ok_) {
    return false;
  }
  // Sort, dedupe, drop tautologies and level-0 false literals.
  std::vector<Lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  out.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i > 0 && c[i] == c[i - 1]) {
      continue;
    }
    if (i > 0 && c[i] == ~c[i - 1]) {
      return true; // tautology
    }
    const LBool v = value(c[i]);
    if (v == LBool::kTrue && level(c[i].var()) == 0) {
      return true; // satisfied at root
    }
    if (v == LBool::kFalse && level(c[i].var()) == 0) {
      continue; // falsified at root: drop literal
    }
    out.push_back(c[i]);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    if (value(out[0]) == LBool::kFalse) {
      ok_ = false;
      return false;
    }
    if (value(out[0]) == LBool::kUndef) {
      enqueue(out[0], kNoReason);
      if (propagate() != kNoReason) {
        ok_ = false;
        return false;
      }
    }
    return true;
  }
  const auto cref = static_cast<ClauseRef>(clause_arena_.size());
  clause_arena_.push_back(Clause{std::move(out), 0.0, 0, false});
  clauses_.push_back(cref);
  attach_clause(cref);
  return true;
}

void Solver::attach_clause(ClauseRef cref) {
  const auto& c = clause_arena_[cref];
  watches_[(~c.lits[0]).code()].push_back({cref, c.lits[1]});
  watches_[(~c.lits[1]).code()].push_back({cref, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assigns_[l.var()] = l.negated() ? LBool::kFalse : LBool::kTrue;
  var_level_[l.var()] = decision_level();
  var_reason_[l.var()] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNoReason;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_propagations_;
    auto& ws = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clause_arena_[w.cref];
      // Normalize: false literal (~p) at position 1.
      const Lit not_p = ~p;
      if (c.lits[0] == not_p) {
        std::swap(c.lits[0], c.lits[1]);
      }
      if (value(c.lits[0]) == LBool::kTrue) {
        ws[keep++] = {w.cref, c.lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back({w.cref, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;
      }
      // Unit or conflicting.
      ws[keep++] = {w.cref, c.lits[0]};
      if (value(c.lits[0]) == LBool::kFalse) {
        confl = w.cref;
        qhead_ = trail_.size();
        for (std::size_t k = i + 1; k < ws.size(); ++k) {
          ws[keep++] = ws[k];
        }
        break;
      }
      enqueue(c.lits[0], w.cref);
    }
    ws.resize(keep);
    if (confl != kNoReason) {
      break;
    }
  }
  return confl;
}

void Solver::bump_var(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (auto& a : activity_) {
      a *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
  if (heap_contains(var)) {
    heap_decrease(var);
  }
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (const auto ref : learnts_) {
      clause_arena_[ref].activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
                     int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(Lit()); // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  bool have_p = false;
  std::size_t index = trail_.size();

  do {
    Clause& c = clause_arena_[confl];
    if (c.learnt) {
      bump_clause(c);
    }
    const std::size_t start = have_p ? 1 : 0;
    for (std::size_t j = start; j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      if (!seen_[q.var()] && level(q.var()) > 0) {
        seen_[q.var()] = true;
        bump_var(q.var());
        if (level(q.var()) >= decision_level()) {
          ++counter;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) {
      --index;
    }
    --index;
    p = trail_[index];
    have_p = true;
    confl = var_reason_[p.var()];
    seen_[p.var()] = false;
    --counter;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Minimize: remove literals implied by the rest of the clause.
  analyze_clear_.assign(out_learnt.begin() + 1, out_learnt.end());
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (level(out_learnt[i].var()) & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (var_reason_[out_learnt[i].var()] == kNoReason ||
        !lit_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[keep++] = out_learnt[i];
    }
  }
  out_learnt.resize(keep);

  // Compute backtrack level: max level among non-asserting literals.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(out_learnt[i].var()) > level(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  for (const Lit l : out_learnt) {
    seen_[l.var()] = false;
  }
  for (const Lit l : analyze_clear_) {
    seen_[l.var()] = false;
  }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = var_reason_[q.var()];
    if (r == kNoReason) {
      // Hit a decision: l is not redundant. Undo marks made here.
      for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
        seen_[analyze_clear_[i].var()] = false;
      }
      analyze_clear_.resize(top);
      return false;
    }
    const Clause& c = clause_arena_[r];
    for (std::size_t j = 1; j < c.lits.size(); ++j) {
      const Lit x = c.lits[j];
      if (seen_[x.var()] || level(x.var()) == 0) {
        continue;
      }
      if ((1u << (level(x.var()) & 31)) & ~abstract_levels) {
        for (std::size_t i = top; i < analyze_clear_.size(); ++i) {
          seen_[analyze_clear_[i].var()] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[x.var()] = true;
      analyze_clear_.push_back(x);
      analyze_stack_.push_back(x);
    }
  }
  return true;
}

void Solver::backtrack(int target) {
  if (decision_level() <= target) {
    return;
  }
  const std::size_t bound = static_cast<std::size_t>(trail_lim_[target]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const int v = trail_[i].var();
    polarity_[v] = assigns_[v] == LBool::kTrue;
    assigns_[v] = LBool::kUndef;
    var_reason_[v] = kNoReason;
    if (!heap_contains(v)) {
      heap_insert(v);
    }
  }
  trail_.resize(bound);
  trail_lim_.resize(target);
  qhead_ = bound;
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const int v = heap_pop();
    if (assigns_[v] == LBool::kUndef) {
      return Lit(v, !polarity_[v]);
    }
  }
  return Lit();
}

void Solver::reduce_db() {
  // Keep clauses with small LBD or high activity; drop the bottom half.
  std::sort(learnts_.begin(), learnts_.end(), [&](ClauseRef a, ClauseRef b) {
    const Clause& ca = clause_arena_[a];
    const Clause& cb = clause_arena_[b];
    if (ca.lbd != cb.lbd) {
      return ca.lbd < cb.lbd;
    }
    return ca.activity > cb.activity;
  });
  const std::size_t keep_target = learnts_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const ClauseRef ref = learnts_[i];
    const Clause& c = clause_arena_[ref];
    // A clause that is the reason for a current assignment must stay.
    const bool locked = value(c.lits[0]) == LBool::kTrue &&
                        var_reason_[c.lits[0].var()] == ref;
    if (i < keep_target || c.lbd <= 3 || locked) {
      kept.push_back(ref);
      continue;
    }
    // Detach from watch lists.
    for (int k = 0; k < 2; ++k) {
      auto& ws = watches_[(~c.lits[k]).code()];
      ws.erase(std::remove_if(ws.begin(), ws.end(),
                              [&](const Watcher& w) { return w.cref == ref; }),
               ws.end());
    }
  }
  learnts_ = std::move(kept);
}

void Solver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_index_.begin(), heap_index_.end(), -1);
  for (int v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == LBool::kUndef) {
      heap_insert(v);
    }
  }
}

namespace {

/// Flushes per-call solver statistics deltas into the process-wide metrics
/// registry on every return path (registered once, then atomics only).
class SolveStatsReporter {
public:
  SolveStatsReporter(const std::uint64_t& conflicts,
                     const std::uint64_t& decisions,
                     const std::uint64_t& propagations)
      : conflicts_(conflicts),
        decisions_(decisions),
        propagations_(propagations),
        conflicts0_(conflicts),
        decisions0_(decisions),
        propagations0_(propagations) {}

  ~SolveStatsReporter() {
    static constexpr double kConflictBounds[] = {0,   10,  100, 1000,
                                                 1e4, 1e5, 1e6};
    static obs::Counter& c_solves = obs::registry().counter("sat.solves");
    static obs::Counter& c_conflicts =
        obs::registry().counter("sat.conflicts");
    static obs::Counter& c_decisions =
        obs::registry().counter("sat.decisions");
    static obs::Counter& c_propagations =
        obs::registry().counter("sat.propagations");
    static obs::Histogram& h_conflicts = obs::registry().histogram(
        "sat.conflicts_per_solve", kConflictBounds);
    c_solves.inc();
    c_conflicts.inc(conflicts_ - conflicts0_);
    c_decisions.inc(decisions_ - decisions0_);
    c_propagations.inc(propagations_ - propagations0_);
    h_conflicts.observe(static_cast<double>(conflicts_ - conflicts0_));
  }

private:
  const std::uint64_t& conflicts_;
  const std::uint64_t& decisions_;
  const std::uint64_t& propagations_;
  std::uint64_t conflicts0_, decisions0_, propagations0_;
};

} // namespace

SolveResult Solver::solve(std::span<const Lit> assumptions,
                          const SolveLimits& limits) {
  if (!ok_) {
    return SolveResult::kUnsat;
  }
  SolveStatsReporter stats_reporter(stats_conflicts_, stats_decisions_,
                                    stats_propagations_);
  backtrack(0);
  rebuild_order_heap();

  std::vector<Lit> learnt;
  std::uint64_t conflicts_this_call = 0;
  std::uint64_t props_start = stats_propagations_;
  const auto start_time = std::chrono::steady_clock::now();
  std::uint64_t loop_ticks = 0;
  std::uint64_t restart_round = 0;
  std::uint64_t restart_budget = kRestartBase * luby(restart_round);
  std::uint64_t conflicts_since_restart = 0;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoReason) {
      ++stats_conflicts_;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      int bt = 0;
      analyze(confl, learnt, bt);
      // Never undo assumption decisions below their level unless forced:
      // clamp to assumption prefix only when the asserting literal allows.
      backtrack(bt);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const auto cref = static_cast<ClauseRef>(clause_arena_.size());
        // LBD = number of distinct decision levels among literals.
        int lbd = 0;
        std::uint64_t level_mask = 0;
        for (const Lit l : learnt) {
          const std::uint64_t bit = std::uint64_t{1} << (level(l.var()) & 63);
          if (!(level_mask & bit)) {
            level_mask |= bit;
            ++lbd;
          }
        }
        clause_arena_.push_back(Clause{learnt, 0.0, lbd, true});
        learnts_.push_back(cref);
        attach_clause(cref);
        bump_clause(clause_arena_[cref]);
        enqueue(learnt[0], cref);
      }
      decay_var_activity();
      clause_inc_ /= kClauseDecay;

      if (learnts_.size() >= max_learnts_) {
        reduce_db();
        max_learnts_ += max_learnts_ / 2;
      }
      continue;
    }

    if (limits.max_conflicts && conflicts_this_call >= limits.max_conflicts) {
      backtrack(0);
      return SolveResult::kUnknown;
    }
    if (limits.max_propagations &&
        stats_propagations_ - props_start >= limits.max_propagations) {
      backtrack(0);
      return SolveResult::kUnknown;
    }
    if (limits.max_seconds > 0.0 && (++loop_ticks & 511) == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_time;
      if (elapsed.count() > limits.max_seconds) {
        backtrack(0);
        return SolveResult::kUnknown;
      }
    }
    if (conflicts_since_restart >= restart_budget) {
      conflicts_since_restart = 0;
      restart_budget = kRestartBase * luby(++restart_round);
      backtrack(0);
      continue;
    }

    // Apply assumptions in order, as pseudo-decisions.
    if (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        continue;
      }
      if (value(a) == LBool::kFalse) {
        return SolveResult::kUnsat; // conflicting assumptions
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(a, kNoReason);
      continue;
    }

    const Lit next = pick_branch_lit();
    if (next.code() < 0) {
      return SolveResult::kSat;
    }
    ++stats_decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

bool Solver::model_value(int var) const {
  return assigns_[var] == LBool::kTrue;
}

// ---- activity heap -------------------------------------------------------

void Solver::heap_insert(int var) {
  heap_index_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_sift_up(heap_.size() - 1);
}

int Solver::heap_pop() {
  const int top = heap_[0];
  heap_index_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_decrease(int var) {
  heap_sift_up(static_cast<std::size_t>(heap_index_[var]));
}

void Solver::heap_sift_up(std::size_t i) {
  const int v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) {
      break;
    }
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<int>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const int v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) {
      break;
    }
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) {
      break;
    }
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<int>(i);
}

} // namespace rcgp::sat
