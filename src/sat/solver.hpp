#pragma once

#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

namespace rcgp::sat {

/// A literal is a variable with a sign, packed as 2*var + (negated ? 1 : 0).
class Lit {
public:
  Lit() = default;
  Lit(int var, bool negated) : code_(2 * var + (negated ? 1 : 0)) {}

  static Lit from_code(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }
  /// DIMACS convention: +v is positive literal of variable v-1.
  static Lit from_dimacs(int d) { return Lit(std::abs(d) - 1, d < 0); }

  int var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  int code() const { return code_; }
  int to_dimacs() const { return negated() ? -(var() + 1) : (var() + 1); }

  Lit operator~() const { return from_code(code_ ^ 1); }
  bool operator==(const Lit&) const = default;

private:
  int code_ = -1;
};

enum class SolveResult { kSat, kUnsat, kUnknown };

/// Resource budget for a solve call; 0 means unlimited.
struct SolveLimits {
  std::uint64_t max_conflicts = 0;
  std::uint64_t max_propagations = 0;
  /// Wall-clock cap, checked every few hundred conflicts.
  double max_seconds = 0.0;
};

/// Conflict-driven clause-learning SAT solver.
///
/// Features: two-literal watches, VSIDS variable activity with phase
/// saving, Luby restarts, first-UIP learning with self-subsumption
/// minimization, LBD-based learned-clause reduction, and budgeted solving
/// (returns kUnknown when the conflict/propagation budget is exhausted,
/// which the CGP fitness loop uses to bound verification cost).
class Solver {
public:
  Solver();

  int new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause; returns false if the database is already inconsistent
  /// (empty clause derived at level 0).
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  SolveResult solve(std::span<const Lit> assumptions = {},
                    const SolveLimits& limits = {});

  /// Model value of a variable after kSat. Unassigned vars default false.
  bool model_value(int var) const;
  bool model_value(Lit l) const {
    return model_value(l.var()) ^ l.negated();
  }

  // Statistics for benches / diagnostics.
  std::uint64_t num_conflicts() const { return stats_conflicts_; }
  std::uint64_t num_decisions() const { return stats_decisions_; }
  std::uint64_t num_propagations() const { return stats_propagations_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_learnts() const { return learnts_.size(); }

private:
  // Clause storage: header + literals in one arena.
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    int lbd = 0;
    bool learnt = false;
  };
  using ClauseRef = int;

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  LBool value(int var) const { return assigns_[var]; }
  LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) {
      return LBool::kUndef;
    }
    return (v == LBool::kTrue) != l.negated() ? LBool::kTrue : LBool::kFalse;
  }

  void attach_clause(ClauseRef cref);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
               int& out_btlevel);
  bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch_lit();
  void bump_var(int var);
  void decay_var_activity() { var_inc_ /= kVarDecay; }
  void bump_clause(Clause& c);
  void reduce_db();
  void rebuild_order_heap();

  // Binary-heap priority queue over variable activity.
  void heap_insert(int var);
  int heap_pop();
  void heap_decrease(int var);
  bool heap_contains(int var) const { return heap_index_[var] >= 0; }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  int level(int var) const { return var_level_[var]; }

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;

  std::vector<Clause> clause_arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_; // indexed by literal code

  std::vector<LBool> assigns_;
  std::vector<bool> polarity_; // saved phases
  std::vector<int> var_level_;
  std::vector<ClauseRef> var_reason_;
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<int> heap_;
  std::vector<int> heap_index_;

  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool ok_ = true;

  std::uint64_t stats_conflicts_ = 0;
  std::uint64_t stats_decisions_ = 0;
  std::uint64_t stats_propagations_ = 0;
  std::uint64_t max_learnts_ = 4096;
};

/// Luby restart sequence value (1-indexed): 1,1,2,1,1,2,4,...
std::uint64_t luby(std::uint64_t i);

} // namespace rcgp::sat
