#pragma once

#include <span>
#include <vector>

#include "sat/solver.hpp"

namespace rcgp::sat {

/// Tseitin-style gate encoder layered over a Solver. Each make_* call
/// allocates a fresh output variable and adds the clauses equisatisfiably
/// defining it, returning the positive literal of that variable.
class CnfBuilder {
public:
  explicit CnfBuilder(Solver& solver) : solver_(solver) {}

  Solver& solver() { return solver_; }

  /// Fresh free variable (positive literal).
  Lit new_lit() { return Lit(solver_.new_var(), false); }

  /// Literal constants: a variable fixed true at root, created lazily.
  Lit true_lit();
  Lit false_lit() { return ~true_lit(); }

  Lit make_and(Lit a, Lit b);
  Lit make_or(Lit a, Lit b);
  Lit make_xor(Lit a, Lit b);
  /// 3-input majority — the RQFP/AQFP primitive.
  Lit make_maj(Lit a, Lit b, Lit c);
  /// Multiplexer: sel ? t : e.
  Lit make_mux(Lit sel, Lit t, Lit e);

  Lit make_and(std::span<const Lit> lits);
  Lit make_or(std::span<const Lit> lits);

  /// Adds clauses forcing a == b.
  void assert_equal(Lit a, Lit b);
  /// Adds a unit clause.
  void assert_true(Lit a) { solver_.add_clause({a}); }

  /// Pairwise at-most-one over the given literals.
  void at_most_one(std::span<const Lit> lits);
  void exactly_one(std::span<const Lit> lits);

private:
  Solver& solver_;
  int true_var_ = -1;
};

} // namespace rcgp::sat
