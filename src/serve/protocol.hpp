#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace rcgp::serve {

/// RAII Unix file descriptor (sockets here, but any fd works).
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void close();

private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a Unix-domain stream socket at `path`,
/// unlinking a stale socket file first. Throws std::runtime_error on
/// failure (path too long for sockaddr_un, bind/listen errors).
Fd listen_unix(const std::string& path, int backlog = 16);

/// Connects to the Unix-domain socket at `path`. Throws
/// std::runtime_error when the daemon is not there.
Fd connect_unix(const std::string& path);

/// Creates, binds, and listens on a TCP stream socket (SO_REUSEADDR set).
/// `host` is resolved with getaddrinfo ("" = every interface); port 0
/// binds an ephemeral port — read it back with local_address(). Throws
/// std::runtime_error on resolution/bind/listen failure.
Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog = 16);

/// Connects to `host:port` over TCP. Throws std::runtime_error when no
/// resolved address accepts the connection.
Fd connect_tcp(const std::string& host, std::uint16_t port);

/// The "host:port" a bound TCP socket actually listens on (getsockname —
/// resolves an ephemeral port 0 to the kernel-assigned one). IPv6
/// addresses come back bracketed ("[::1]:7000").
std::string local_address(int fd);

/// How the daemon and its clients reach each other: a Unix socket path or
/// a TCP endpoint behind one interface, so the serve/client/island layers
/// never branch on the address family. The NDJSON protocol and the slot
/// semaphore are transport-agnostic and unchanged.
class Transport {
public:
  virtual ~Transport() = default;
  /// Binds and listens; throws std::runtime_error on failure.
  virtual Fd listen(int backlog = 16) = 0;
  /// Connects to the (listening) endpoint; throws when nobody is there.
  virtual Fd connect() = 0;
  /// The endpoint in the same syntax for_address() accepts.
  virtual std::string describe() const = 0;
  /// Removes leftover endpoint state after the listener closed (the Unix
  /// socket file; TCP endpoints have none). Idempotent.
  virtual void cleanup() = 0;

  static std::unique_ptr<Transport> unix_socket(std::string path);
  static std::unique_ptr<Transport> tcp(std::string host, std::uint16_t port);
  /// Address syntax shared by `--connect` and island endpoints:
  /// "host:port" with a numeric port suffix is TCP, anything else is a
  /// Unix socket path. Throws std::invalid_argument on an empty address
  /// or a TCP port outside [0, 65535].
  static std::unique_ptr<Transport> for_address(const std::string& address);
};

/// Waits up to `timeout_ms` for `fd` to become readable. Returns false on
/// timeout, true when readable (or the peer hung up — the following read
/// reports that).
bool wait_readable(int fd, int timeout_ms);

/// Writes the whole buffer, retrying short writes. False on I/O error or
/// a closed peer (EPIPE surfaces as false, not a signal — the callers
/// disable SIGPIPE per send).
bool write_all(int fd, std::string_view data);

/// Appends a newline and writes atomically enough for NDJSON framing
/// (one write_all call).
bool write_line(int fd, std::string_view line);

/// Incremental newline-delimited reader over a socket fd. next() returns
/// false on EOF with no buffered line; lines arriving split across reads
/// are reassembled.
class LineReader {
public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one full line is available (stripping the '\n') or the
  /// peer closes. Returns false on EOF/error.
  bool next(std::string& line);

private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

} // namespace rcgp::serve
