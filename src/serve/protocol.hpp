#pragma once

#include <string>
#include <string_view>

namespace rcgp::serve {

/// RAII Unix file descriptor (sockets here, but any fd works).
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void close();

private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a Unix-domain stream socket at `path`,
/// unlinking a stale socket file first. Throws std::runtime_error on
/// failure (path too long for sockaddr_un, bind/listen errors).
Fd listen_unix(const std::string& path, int backlog = 16);

/// Connects to the Unix-domain socket at `path`. Throws
/// std::runtime_error when the daemon is not there.
Fd connect_unix(const std::string& path);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns false on
/// timeout, true when readable (or the peer hung up — the following read
/// reports that).
bool wait_readable(int fd, int timeout_ms);

/// Writes the whole buffer, retrying short writes. False on I/O error or
/// a closed peer (EPIPE surfaces as false, not a signal — the callers
/// disable SIGPIPE per send).
bool write_all(int fd, std::string_view data);

/// Appends a newline and writes atomically enough for NDJSON framing
/// (one write_all call).
bool write_line(int fd, std::string_view line);

/// Incremental newline-delimited reader over a socket fd. next() returns
/// false on EOF with no buffered line; lines arriving split across reads
/// are reassembled.
class LineReader {
public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one full line is available (stripping the '\n') or the
  /// peer closes. Returns false on EOF/error.
  bool next(std::string& line);

private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

} // namespace rcgp::serve
