#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rcgp::serve {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

} // namespace

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = address_for(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail_errno("socket");
  }
  ::unlink(path.c_str()); // stale socket from a killed daemon
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    fail_errno("listen " + path);
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = address_for(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail_errno("socket");
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail_errno("connect " + path);
  }
  return fd;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return r > 0;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(fd, framed);
}

bool LineReader::next(std::string& line) {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      eof_ = true;
      return false;
    }
    if (n == 0) {
      eof_ = true; // a trailing unterminated line is dropped by design
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

} // namespace rcgp::serve
