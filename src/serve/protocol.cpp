#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace rcgp::serve {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

} // namespace

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = address_for(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail_errno("socket");
  }
  ::unlink(path.c_str()); // stale socket from a killed daemon
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    fail_errno("listen " + path);
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = address_for(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    fail_errno("socket");
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail_errno("connect " + path);
  }
  return fd;
}

namespace {

/// Resolved addresses for `host:port` (AF_UNSPEC: v4 and v6). Throws on
/// resolution failure; the caller frees with freeaddrinfo.
addrinfo* resolve_tcp(const std::string& host, std::uint16_t port,
                      bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("serve: cannot resolve " +
                             (host.empty() ? std::string("*") : host) + ":" +
                             service + ": " + ::gai_strerror(rc));
  }
  return res;
}

} // namespace

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  addrinfo* res = resolve_tcp(host, port, /*passive=*/true);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd.get(), backlog) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("serve: cannot listen on " +
                           (host.empty() ? std::string("*") : host) + ":" +
                           std::to_string(port) + ": " + last_error);
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo* res = resolve_tcp(host, port, /*passive=*/false);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("serve: connect " + host + ":" +
                           std::to_string(port) + ": " + last_error);
}

std::string local_address(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    fail_errno("getsockname");
  }
  char host[INET6_ADDRSTRLEN] = {};
  if (ss.ss_family == AF_INET) {
    const auto* in = reinterpret_cast<const sockaddr_in*>(&ss);
    ::inet_ntop(AF_INET, &in->sin_addr, host, sizeof(host));
    return std::string(host) + ":" + std::to_string(ntohs(in->sin_port));
  }
  if (ss.ss_family == AF_INET6) {
    const auto* in6 = reinterpret_cast<const sockaddr_in6*>(&ss);
    ::inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof(host));
    return "[" + std::string(host) +
           "]:" + std::to_string(ntohs(in6->sin6_port));
  }
  if (ss.ss_family == AF_UNIX) {
    const auto* un = reinterpret_cast<const sockaddr_un*>(&ss);
    return std::string(un->sun_path);
  }
  return "?";
}

namespace {

class UnixTransport final : public Transport {
public:
  explicit UnixTransport(std::string path) : path_(std::move(path)) {}
  Fd listen(int backlog) override { return listen_unix(path_, backlog); }
  Fd connect() override { return connect_unix(path_); }
  std::string describe() const override { return path_; }
  void cleanup() override { ::unlink(path_.c_str()); }

private:
  std::string path_;
};

class TcpTransport final : public Transport {
public:
  TcpTransport(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}
  Fd listen(int backlog) override { return listen_tcp(host_, port_, backlog); }
  Fd connect() override { return connect_tcp(host_, port_); }
  std::string describe() const override {
    return host_ + ":" + std::to_string(port_);
  }
  void cleanup() override {} // nothing lives on disk

private:
  std::string host_;
  std::uint16_t port_;
};

} // namespace

std::unique_ptr<Transport> Transport::unix_socket(std::string path) {
  return std::make_unique<UnixTransport>(std::move(path));
}

std::unique_ptr<Transport> Transport::tcp(std::string host,
                                          std::uint16_t port) {
  return std::make_unique<TcpTransport>(std::move(host), port);
}

std::unique_ptr<Transport> Transport::for_address(const std::string& address) {
  if (address.empty()) {
    throw std::invalid_argument("serve: empty address");
  }
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos && colon + 1 < address.size() &&
      colon > 0) {
    const std::string port_str = address.substr(colon + 1);
    bool numeric = true;
    for (const char c : port_str) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      // Accumulate with an early bail instead of std::stoul: a digit run
      // long enough to overflow unsigned long must still be the port-out-
      // of-range error, not std::out_of_range.
      unsigned long port = 0;
      for (const char c : port_str) {
        port = port * 10 + static_cast<unsigned long>(c - '0');
        if (port > 65535) {
          throw std::invalid_argument("serve: TCP port out of range in \"" +
                                      address + "\"");
        }
      }
      std::string host = address.substr(0, colon);
      // Strip IPv6 brackets ("[::1]:7000").
      if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
        host = host.substr(1, host.size() - 2);
      }
      return tcp(std::move(host), static_cast<std::uint16_t>(port));
    }
  }
  return unix_socket(address);
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return r > 0;
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(fd, framed);
}

bool LineReader::next(std::string& line) {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      eof_ = true;
      return false;
    }
    if (n == 0) {
      eof_ = true; // a trailing unterminated line is dropped by design
      continue;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

} // namespace rcgp::serve
