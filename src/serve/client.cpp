#include "serve/client.hpp"

#include <stdexcept>

namespace rcgp::serve {

Client::Client(const std::string& address)
    : fd_(Transport::for_address(address)->connect()), reader_(fd_.get()) {}

core::SynthesisResponse Client::submit(const core::SynthesisRequest& request) {
  return submit_line(core::to_json(request));
}

core::SynthesisResponse Client::submit_line(const std::string& request_json) {
  if (!write_line(fd_.get(), request_json)) {
    throw std::runtime_error("serve: connection lost while sending request");
  }
  std::string line;
  if (!reader_.next(line)) {
    throw std::runtime_error("serve: connection closed before a response");
  }
  ++lineno_;
  return core::parse_response(line, "socket", lineno_);
}

} // namespace rcgp::serve
