#pragma once

#include <string>

#include "core/request.hpp"
#include "serve/protocol.hpp"

namespace rcgp::serve {

/// Synchronous client for the `rcgp serve` socket protocol: one request
/// line out, one response line back, over a persistent connection.
class Client {
public:
  /// Connects immediately; throws std::runtime_error when the daemon is
  /// not listening at `address` — a Unix socket path or a TCP "host:port"
  /// (Transport::for_address decides).
  explicit Client(const std::string& address);

  /// Round-trips one request. Throws std::runtime_error when the
  /// connection drops and io::ParseError when the response line is not a
  /// valid response document.
  core::SynthesisResponse submit(const core::SynthesisRequest& request);

  /// As submit, but ships an already-serialized request line verbatim
  /// (the `rcgp client` manifest pass-through).
  core::SynthesisResponse submit_line(const std::string& request_json);

private:
  Fd fd_;
  LineReader reader_;
  std::size_t lineno_ = 0;
};

} // namespace rcgp::serve
