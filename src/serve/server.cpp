#include "serve/server.hpp"

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "core/request.hpp"
#include "io/parse_error.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace rcgp::serve {

namespace {

// Sub-millisecond cache hits through minute-scale evolution runs.
constexpr double kRequestSecondsBounds[] = {1e-4, 1e-3, 1e-2, 0.1,
                                            1.0,  10.0, 100.0};

bool blank(const std::string& line) {
  for (const char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

} // namespace

/// Counting synthesis slots shared by every connection; headerless so the
/// header stays free of <condition_variable>.
struct ServerSlots {
  explicit ServerSlots(unsigned n) : free(n) {}
  void acquire() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return free > 0; });
    --free;
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++free;
    }
    cv.notify_one();
  }
  std::mutex mu;
  std::condition_variable cv;
  unsigned free;
};

Server::Server(ServeOptions options) : options_(std::move(options)) {
  if (options_.workers == 0) {
    options_.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  slots_ = std::make_unique<ServerSlots>(options_.workers);
  if (!options_.executor) {
    options_.executor = [this](const batch::Job& job,
                               const batch::JobContext& ctx) {
      return batch::execute_request(job, ctx, options_.execute);
    };
  }
}

Server::~Server() { stop(); }

bool Server::stopping() const {
  return internal_stop_.stop_requested() ||
         (options_.stop != nullptr && options_.stop->stop_requested());
}

void Server::start() {
  if (running_) {
    return;
  }
  transport_ = options_.listen.empty()
                   ? Transport::unix_socket(options_.socket_path)
                   : Transport::for_address(options_.listen);
  listener_ = transport_->listen();
  // The kernel-resolved endpoint (an ephemeral TCP port 0 becomes the
  // real one); Unix sockets just report their path.
  bound_address_ =
      options_.listen.empty() ? options_.socket_path
                              : local_address(listener_.get());
  running_ = true;
  obs::registry().gauge("serve.up").set(1.0);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::run() {
  start();
  while (!stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop();
}

void Server::stop() {
  if (!running_) {
    return;
  }
  internal_stop_.request_stop();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  listener_.close();
  std::vector<Connection> conns;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
    finished_.clear();
    for (const int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR); // unblocks connection reads
    }
  }
  for (auto& c : conns) {
    if (c.thread.joinable()) {
      c.thread.join();
    }
  }
  if (transport_ != nullptr) {
    transport_->cleanup(); // unlinks the socket file; no-op for TCP
  }
  obs::registry().gauge("serve.up").set(0.0);
  running_ = false;
}

void Server::accept_loop() {
  obs::set_thread_name("serve-accept");
  std::uint64_t next_id = 0;
  while (!stopping()) {
    reap_finished();
    if (!wait_readable(listener_.get(), 200)) {
      continue;
    }
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    obs::registry().counter("serve.connections").inc();
    const std::uint64_t id = next_id++;
    const std::lock_guard<std::mutex> lock(mu_);
    open_fds_.push_back(fd);
    connections_.push_back(
        {id, std::thread([this, fd, id] { connection(fd, id); })});
  }
}

/// Joins connection threads that announced completion, so a long-running
/// daemon serving many short-lived connections does not accumulate
/// finished thread handles until stop().
void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint64_t id : finished_) {
      for (auto it = connections_.begin(); it != connections_.end(); ++it) {
        if (it->id == id) {
          done.push_back(std::move(it->thread));
          connections_.erase(it);
          break;
        }
      }
    }
    finished_.clear();
  }
  for (auto& t : done) {
    if (t.joinable()) {
      t.join(); // marks done as its last act, so this returns promptly
    }
  }
}

void Server::connection(int raw_fd, std::uint64_t id) {
  Fd fd(raw_fd);
  obs::set_thread_name("serve-conn-" + std::to_string(id));
  auto& reg = obs::registry();
  obs::Histogram& seconds_hist =
      reg.histogram("serve.request.seconds", kRequestSecondsBounds);
  reg.gauge("serve.connections.active").add(1.0);
  ServerSlots& slots = *slots_;

  LineReader reader(fd.get());
  std::string line;
  std::size_t lineno = 0;
  while (!stopping() && reader.next(line)) {
    ++lineno;
    if (blank(line)) {
      continue;
    }
    reg.counter("serve.requests").inc();
    util::Stopwatch watch;
    core::SynthesisResponse resp;
    batch::Job job;
    bool parsed = false;
    try {
      job = core::parse_request(line, "socket", lineno, "serve");
      parsed = true;
    } catch (const std::exception& e) {
      resp.ok = false;
      resp.stop_reason = "error";
      resp.error = e.what();
      reg.counter("serve.errors").inc();
    }
    if (parsed) {
      // Acquires the slot and bumps the gauge in its constructor so there
      // is no window where a throw leaks a slot or skews the gauge.
      struct SlotGuard {
        SlotGuard(ServerSlots& slots, obs::Gauge& gauge)
            : s(slots), active(gauge) {
          s.acquire();
          active.add(1.0);
        }
        ~SlotGuard() {
          active.add(-1.0);
          s.release();
        }
        ServerSlots& s;
        obs::Gauge& active;
      };
      try {
        const SlotGuard guard(slots, reg.gauge("serve.active"));
        batch::JobContext ctx;
        ctx.worker = static_cast<unsigned>(id);
        ctx.stop = &internal_stop_;
        if (!options_.checkpoint_dir.empty() &&
            job.algorithm == core::Algorithm::kEvolve) {
          // Shared-checkpoint contract (docs/ISLANDS.md): the job's state
          // lives at <dir>/<id>.ckpt and an existing file means "continue
          // it" — an island coordinator pointing its state_dir here makes
          // every daemon slice a bit-identical resume.
          ctx.checkpoint_path =
              options_.checkpoint_dir + "/" + job.id + ".ckpt";
          // Multi-island jobs persist a fleet manifest under
          // <ckpt>.islands instead of the single checkpoint file — either
          // artifact means "continue" (mirrors batch::run_batch).
          ctx.resume_from_checkpoint =
              std::filesystem::exists(ctx.checkpoint_path) ||
              std::filesystem::exists(ctx.checkpoint_path +
                                      ".islands/fleet.json");
        }
        const batch::JobExecution exec = options_.executor(job, ctx);
        resp = batch::response_for(job.id, exec, watch.seconds());
      } catch (const std::exception& e) {
        resp = core::SynthesisResponse{};
        resp.id = job.id;
        resp.ok = false;
        resp.stop_reason = "error";
        resp.error = e.what();
        reg.counter("serve.errors").inc();
      }
    }
    resp.seconds = watch.seconds();
    if (resp.ok) {
      reg.counter("serve.responses.ok").inc();
    }
    seconds_hist.observe(resp.seconds);
    if (options_.trace != nullptr) {
      options_.trace->event("serve_request")
          .field("id", resp.id)
          .field("connection", id)
          .field("ok", resp.ok)
          .field("cached", resp.cached)
          .field("seeded", resp.seeded)
          .field("seconds", resp.seconds);
    }
    if (!write_line(fd.get(), core::to_json(resp))) {
      break;
    }
  }
  reg.gauge("serve.connections.active").add(-1.0);
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
    if (*it == raw_fd) {
      open_fds_.erase(it);
      break;
    }
  }
  finished_.push_back(id); // accept_loop joins us on its next pass
}

} // namespace rcgp::serve
