#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/execute.hpp"
#include "robust/stop.hpp"
#include "serve/protocol.hpp"

namespace rcgp::obs {
class TraceSink;
}

namespace rcgp::serve {

struct ServerSlots;

/// Configuration of the synthesis daemon (`rcgp serve`, docs/SERVICE.md).
struct ServeOptions {
  /// Unix-domain socket the daemon listens on (the default transport).
  std::string socket_path = "rcgp.sock";
  /// TCP endpoint "host:port" (`rcgp serve --listen`). When non-empty it
  /// wins over socket_path; port 0 binds an ephemeral port — read the
  /// actual endpoint back with Server::bound_address(). Same NDJSON
  /// protocol and slot semantics as the Unix transport.
  std::string listen;
  /// Directory for per-job evolve checkpoints: every kEvolve job gets
  /// `<dir>/<id>.ckpt` and automatically resumes from it when it already
  /// exists — this is how an island coordinator shares slice state with
  /// the daemon (docs/ISLANDS.md). Empty = no daemon-side checkpointing.
  std::string checkpoint_dir;
  /// Concurrent synthesis slots across all connections (0 = hardware
  /// concurrency). Cache hits hold a slot only for microseconds, so a
  /// busy pool still drains hit traffic quickly.
  unsigned workers = 1;
  /// Shared executor configuration, including the optional result cache.
  /// The daemon defaults to persisting the cache after every insert so a
  /// SIGKILL loses at most the in-flight job.
  batch::ExecuteOptions execute;
  /// Replaceable request body (tests); defaults to batch::execute_request
  /// with `execute`.
  batch::JobExecutor executor;
  /// External shutdown flag (the CLI points this at the signal token).
  /// Not owned; may be null when only stop() is used.
  robust::StopToken* stop = nullptr;
  /// Optional structured trace: one `serve_request` event per response.
  obs::TraceSink* trace = nullptr;
};

/// Newline-delimited-JSON synthesis service over a local Unix socket.
///
/// Protocol: each request line is one core::SynthesisRequest JSON object;
/// the daemon answers with one core::SynthesisResponse line in request
/// order per connection (connections are independent and concurrent).
/// Malformed lines get an `ok:false` response carrying the parse error —
/// the connection survives. Telemetry: serve.connections,
/// serve.requests, serve.responses.ok, serve.errors, serve.active plus
/// the serve.request.seconds histogram; cache traffic shows up under the
/// cache.* metrics of the underlying store.
class Server {
public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept loop. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Requests shutdown, closes the listener, joins every connection
  /// thread, and removes the socket file (Unix transport). Idempotent.
  void stop();

  /// start() + block until the external stop token (or stop()) fires.
  void run();

  const std::string& socket_path() const { return options_.socket_path; }
  /// The endpoint the daemon actually listens on, valid after start():
  /// the socket path, or "host:port" with an ephemeral port resolved.
  /// Feed it to serve::Client or island endpoint lists as-is.
  const std::string& bound_address() const { return bound_address_; }
  bool running() const { return running_; }

private:
  struct Connection {
    std::uint64_t id;
    std::thread thread;
  };

  void accept_loop();
  void connection(int fd, std::uint64_t id);
  void reap_finished();
  bool stopping() const;

  ServeOptions options_;
  std::unique_ptr<Transport> transport_;
  std::string bound_address_;
  Fd listener_;
  robust::StopToken internal_stop_;
  bool running_ = false;
  std::thread acceptor_;
  std::unique_ptr<ServerSlots> slots_;
  std::mutex mu_; // guards connections_, finished_, and open_fds_
  std::vector<Connection> connections_;
  std::vector<std::uint64_t> finished_; // connection ids ready to join
  std::vector<int> open_fds_;
};

} // namespace rcgp::serve
