#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/findings.hpp"
#include "fuzz/shrink.hpp"

namespace rcgp::fuzz {

/// The differential fuzzing targets (docs/FUZZING.md). Each target is a
/// pure function of (seed, case_index): it derives every random draw from
/// util::Rng::stream(seed, case_index, salt), so any finding reproduces
/// from the triple (target, seed, case) alone.
enum class Target : std::uint8_t {
  kIoRoundtrip,         ///< write/re-read identity through every io:: format
  kParserCorruption,    ///< corrupted inputs must raise ParseError, no more
  kManifestCorruption,  ///< corrupted manifests / cache stores / checkpoints
                        ///< must raise ParseError or IntegrityError
  kOptimizerDiff,       ///< delta-eval vs full recomputation, paranoid runs
  kCecCross,            ///< sim/BDD/SAT engine agreement vs ground truth
  kSimdDifferential,    ///< every SIMD tier vs scalar, kernels + end-to-end
  kSelftest,            ///< always-failing target exercising the pipeline
};

/// Stable kebab-case name ("io-roundtrip", "parser-corruption",
/// "manifest-corruption", "optimizer-differential", "cec-cross",
/// "simd-differential", "selftest").
std::string_view to_string(Target target);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
Target parse_target(std::string_view name);

/// The six production targets (selftest excluded — it always "fails").
std::vector<Target> default_targets();

/// Per-case state handed to a target by the harness.
struct CaseContext {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  /// Scratch directory for cases that must go through real files.
  std::string work_dir;
  bool do_shrink = true;
  /// Accumulated over the case's shrinking sessions.
  ShrinkStats shrink_stats;
};

/// Runs one case of `target`, appending any findings (diagnostic fields
/// and minimized reproducer content filled; paths and repro command are
/// the harness's job). Unexpected exceptions are left to the harness.
void run_case(Target target, CaseContext& ctx, std::vector<Finding>& out);

} // namespace rcgp::fuzz
