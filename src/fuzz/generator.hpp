#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rcgp::fuzz {

/// Seed-addressable random-input generators for the fuzzing harness
/// (docs/FUZZING.md). Every generator draws from a util::Rng the caller
/// derives with Rng::stream(seed, case_index, salt), so any failing case
/// reproduces from (seed, case_index) alone — no shared generator state.

/// Size/shape knobs of random_netlist. Defaults keep exhaustive
/// simulation and all three CEC engines fast (PIs <= 6).
struct NetlistShape {
  unsigned min_pis = 2;
  unsigned max_pis = 5;
  unsigned min_pos = 1;
  unsigned max_pos = 4;
  unsigned min_gates = 1;
  unsigned max_gates = 24;
  /// Probability that a gate input reads the constant-1 port even when
  /// unconsumed ports are available (constant fan-out is unlimited).
  double const_bias = 0.2;
};

/// Random RQFP netlist, valid by construction: gate inputs are drawn from
/// a pool of not-yet-consumed ports (swap-removed on use), so feed-forward
/// order and the single fan-out invariant hold without rejection sampling.
/// validate() is asserted before returning.
rqfp::Netlist random_netlist(util::Rng& rng, const NetlistShape& shape = {});

/// Shape knobs of random_aig.
struct AigShape {
  unsigned min_pis = 2;
  unsigned max_pis = 6;
  unsigned min_pos = 1;
  unsigned max_pos = 4;
  unsigned min_ands = 1;
  unsigned max_ands = 40;
  /// Probability a fanin is complemented.
  double invert_chance = 0.4;
};

/// Random AIG: fanins are drawn uniformly from {const0, PIs, earlier
/// ANDs} with random complementation; POs point at random signals.
aig::Aig random_aig(util::Rng& rng, const AigShape& shape = {});

/// `count` random truth tables over `vars` variables.
std::vector<tt::TruthTable> random_tables(util::Rng& rng, unsigned vars,
                                          unsigned count);

/// Byte-mutation operator for the parser-corruption target: applies
/// 1..max_ops random corruptions (bit flips, byte overwrites, range
/// deletion/duplication, random insertion, truncation) to `blob`.
/// May return an empty string (empty files are a corpus case too).
std::string corrupt_bytes(std::string blob, util::Rng& rng,
                          unsigned max_ops = 8);

} // namespace rcgp::fuzz
