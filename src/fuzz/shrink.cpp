#include "fuzz/shrink.hpp"

#include <algorithm>

#include "core/shrink.hpp"

namespace rcgp::fuzz {

namespace {

/// Copy of `net` without primary output `po` (the netlist API has no
/// remove_po, so rebuild). Gate structure and the other POs keep order.
rqfp::Netlist drop_po(const rqfp::Netlist& net, std::uint32_t po) {
  rqfp::Netlist out(net.num_pis());
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    out.add_gate(net.gate(g).in, net.gate(g).config);
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    if (i != po) {
      out.add_po(net.po_at(i), net.po_name(i));
    }
  }
  return out;
}

/// Copy of `net` with gate `g` disconnected: every consumer of one of its
/// output ports reads the constant port instead, then dead gates are
/// removed. The result is valid (constant fan-out is unlimited).
rqfp::Netlist disconnect_gate(const rqfp::Netlist& net, std::uint32_t g) {
  rqfp::Netlist out = net;
  const auto is_output_of_g = [&](rqfp::Port p) {
    return net.is_gate_port(p) && net.gate_of_port(p) == g;
  };
  for (std::uint32_t h = 0; h < out.num_gates(); ++h) {
    for (auto& in : out.gate(h).in) {
      if (is_output_of_g(in)) {
        in = rqfp::kConstPort;
      }
    }
  }
  for (std::uint32_t i = 0; i < out.num_pos(); ++i) {
    if (is_output_of_g(out.po_at(i))) {
      out.set_po(i, rqfp::kConstPort);
    }
  }
  return core::shrink(out);
}

} // namespace

rqfp::Netlist shrink_netlist(
    const rqfp::Netlist& failing,
    const std::function<bool(const rqfp::Netlist&)>& fails,
    ShrinkStats* stats, std::uint32_t max_attempts) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;

  rqfp::Netlist best = failing;
  bool improved = true;
  while (improved && s.attempts < max_attempts) {
    improved = false;

    // Try dropping each PO (keep at least one: a PO-less netlist is
    // degenerate for most predicates and for the evaluation APIs).
    for (std::uint32_t po = best.num_pos();
         po-- > 0 && best.num_pos() > 1 && s.attempts < max_attempts;) {
      rqfp::Netlist candidate = core::shrink(drop_po(best, po));
      ++s.attempts;
      if (fails(candidate)) {
        ++s.accepted;
        best = std::move(candidate);
        improved = true;
      }
    }

    // Try disconnecting each gate, latest first (later gates tend to feed
    // POs directly, so removing them simplifies fastest).
    for (std::uint32_t g = best.num_gates();
         g-- > 0 && s.attempts < max_attempts;) {
      if (g >= best.num_gates()) {
        continue; // earlier acceptance shrank the netlist under us
      }
      rqfp::Netlist candidate = disconnect_gate(best, g);
      if (candidate == best) {
        continue;
      }
      ++s.attempts;
      if (fails(candidate)) {
        ++s.accepted;
        best = std::move(candidate);
        improved = true;
      }
    }
  }
  return best;
}

std::string shrink_bytes(const std::string& failing,
                         const std::function<bool(const std::string&)>& fails,
                         ShrinkStats* stats, std::uint32_t max_attempts) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;

  std::string best = failing;
  std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);
  while (chunk >= 1 && s.attempts < max_attempts) {
    bool improved = false;
    for (std::size_t at = 0; at < best.size() && s.attempts < max_attempts;) {
      const std::size_t len = std::min(chunk, best.size() - at);
      std::string candidate = best;
      candidate.erase(at, len);
      ++s.attempts;
      if (fails(candidate)) {
        ++s.accepted;
        best = std::move(candidate);
        improved = true;
        // retry the same offset: the next chunk slid into place
      } else {
        at += len;
      }
    }
    if (chunk == 1 && !improved) {
      break;
    }
    chunk = improved ? chunk : chunk / 2;
  }
  return best;
}

} // namespace rcgp::fuzz
