#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/findings.hpp"
#include "fuzz/targets.hpp"
#include "robust/stop.hpp"

namespace rcgp::fuzz {

/// Configuration of one fuzzing run (`rcgp fuzz`, docs/FUZZING.md).
struct FuzzOptions {
  /// Targets to drive, in order (empty = default_targets()).
  std::vector<Target> targets;
  std::uint64_t seed = 1;
  /// Cases per target. Determinism contract: the findings log of a
  /// (targets, seed, cases) run is bit-identical across invocations.
  std::uint64_t cases = 100;
  /// Re-run exactly one case index per target (repro mode); `cases` is
  /// ignored when set.
  std::optional<std::uint64_t> only_case;
  /// Reproducers and scratch files land here (created if missing).
  std::string out_dir = "fuzz-out";
  /// Findings JSONL path; empty = `<out_dir>/findings.jsonl`.
  std::string log_path;
  /// Minimize failing inputs before reporting (--no-shrink disables).
  bool shrink = true;
  /// Wall-clock / stop-token bounds for the whole run. Checked between
  /// cases, so a deadline overshoots by at most one case.
  robust::RunBudget budget;
  /// Observer invoked for every finding after the harness filled in the
  /// reproducer path and repro command (the CLI prints them live).
  std::function<void(const Finding&)> on_finding;
};

struct FuzzSummary {
  std::uint64_t cases_run = 0;
  std::uint64_t findings = 0;
  double seconds = 0.0;
  robust::StopReason stop_reason = robust::StopReason::kCompleted;
  std::string log_path;
};

/// Runs every configured target for the configured number of cases,
/// writing minimized reproducers and the findings log under out_dir and
/// reporting fuzz.* metrics/spans through src/obs. Never throws on a
/// finding — findings are data; only setup errors (unwritable out_dir)
/// raise.
FuzzSummary run_fuzz(const FuzzOptions& options);

} // namespace rcgp::fuzz
