#include "fuzz/targets.hpp"

#include <array>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "aig/aig_simulate.hpp"
#include "batch/manifest.hpp"
#include "cache/store.hpp"
#include "cec/bdd_cec.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/fitness.hpp"
#include "core/flow.hpp"
#include "core/mutation.hpp"
#include "core/optimizer.hpp"
#include "core/request.hpp"
#include "core/shrink.hpp"
#include "fuzz/generator.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/io.hpp"
#include "io/parse_error.hpp"
#include "io/pla.hpp"
#include "io/rqfp_writer.hpp"
#include "io/verilog.hpp"
#include "mig/mig_from_aig.hpp"
#include "mig/mig_rewrite.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault.hpp"
#include "robust/integrity.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/simulate.hpp"
#include "util/rng.hpp"

namespace rcgp::fuzz {

namespace {

/// Stream salt: every independent random draw purpose of a target gets
/// its own counter-based stream from (seed, case_index, salt), so adding
/// draws to one purpose never shifts another target's sequence.
std::uint64_t salt(Target target, unsigned purpose) {
  return (static_cast<std::uint64_t>(target) << 8) | purpose;
}

util::Rng case_rng(const CaseContext& ctx, Target target, unsigned purpose) {
  return util::Rng::stream(ctx.seed, ctx.index, salt(target, purpose));
}

Finding make_finding(const CaseContext& ctx, Target target,
                     std::string kind, std::string detail) {
  Finding f;
  f.target = std::string(to_string(target));
  f.seed = ctx.seed;
  f.case_index = ctx.index;
  f.kind = std::move(kind);
  f.detail = std::move(detail);
  return f;
}

std::string describe_fitness(const core::Fitness& f) {
  return f.to_string();
}

bool fitness_equal(const core::Fitness& a, const core::Fitness& b) {
  return a.success_rate == b.success_rate && a.n_r == b.n_r &&
         a.n_g == b.n_g && a.n_b == b.n_b;
}

// ---------------------------------------------------------------------
// io-roundtrip
// ---------------------------------------------------------------------

void check_rqfp_roundtrips(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kIoRoundtrip, 0);
  const rqfp::Netlist net = random_netlist(rng);

  // In-memory .rqfp round trip: structural identity.
  const auto text_mismatch = [](const rqfp::Netlist& n) {
    try {
      return !(io::parse_rqfp_string(io::write_rqfp_string(n)) == n);
    } catch (const std::exception&) {
      return true; // writer output its own parser rejects
    }
  };
  if (text_mismatch(net)) {
    rqfp::Netlist minimal =
        ctx.do_shrink
            ? shrink_netlist(net, text_mismatch, &ctx.shrink_stats)
            : net;
    Finding f = make_finding(ctx, Target::kIoRoundtrip, "rqfp-text-roundtrip",
                             "write_rqfp_string -> parse_rqfp_string is not "
                             "the identity on this netlist");
    f.reproducer = io::write_rqfp_string(minimal);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
    return;
  }

  // File facade round trip with format auto-detection.
  const std::string path = ctx.work_dir + "/roundtrip.rqfp";
  io::write_network(net, path);
  const io::Network back = io::read_network(path);
  if (!back.rqfp.has_value() || !(*back.rqfp == net)) {
    Finding f = make_finding(ctx, Target::kIoRoundtrip, "rqfp-file-roundtrip",
                             "write_network -> read_network (.rqfp, auto "
                             "detection) is not the identity");
    f.reproducer = io::write_rqfp_string(net);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
    return;
  }

  // Write-only formats must at least serialize without throwing.
  if (io::write_structural_verilog_string(net).empty() ||
      io::write_dot_string(net).empty()) {
    Finding f = make_finding(ctx, Target::kIoRoundtrip, "write-only-empty",
                             "structural Verilog / DOT writer produced an "
                             "empty document");
    f.reproducer = io::write_rqfp_string(net);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
  }
}

void check_aig_roundtrips(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kIoRoundtrip, 1);
  const aig::Aig net = random_aig(rng);
  const std::vector<tt::TruthTable> reference = aig::simulate(net);

  const auto report = [&](const std::string& kind, const std::string& detail) {
    Finding f = make_finding(ctx, Target::kIoRoundtrip, kind, detail);
    // AIG findings ship the ASCII AIGER dump (no AIG shrinker yet; the
    // generator shapes are small enough to debug directly).
    f.reproducer = io::write_aiger_string(net);
    f.reproducer_ext = ".aag";
    out.push_back(std::move(f));
  };

  struct StringTrip {
    const char* name;
    std::function<aig::Aig(const aig::Aig&)> trip;
  };
  const StringTrip trips[] = {
      {"verilog",
       [](const aig::Aig& a) {
         return io::parse_verilog_string(io::write_verilog_string(a));
       }},
      {"blif",
       [](const aig::Aig& a) {
         return io::parse_blif_string(io::write_blif_string(a));
       }},
      {"aiger-ascii",
       [](const aig::Aig& a) {
         return io::parse_aiger_string(io::write_aiger_string(a));
       }},
      {"aiger-binary",
       [](const aig::Aig& a) {
         std::istringstream in(io::write_aiger_binary_string(a));
         return io::parse_aiger_binary(in);
       }},
  };
  for (const auto& t : trips) {
    try {
      const aig::Aig back = t.trip(net);
      if (aig::simulate(back) != reference) {
        report(std::string("aig-roundtrip-") + t.name,
               "functional mismatch after write/parse round trip");
        return;
      }
    } catch (const std::exception& e) {
      report(std::string("aig-roundtrip-") + t.name,
             std::string("round trip threw: ") + e.what());
      return;
    }
  }

  // Substrate round trip: the MIG conversion (and its Ω-rule rewriting)
  // must preserve every PO function.
  try {
    const mig::Mig m = mig::mig_from_aig(net);
    if (m.simulate() != reference) {
      report("mig-conversion", "mig_from_aig changed a PO function");
      return;
    }
    if (mig::optimize_mig(m).simulate() != reference) {
      report("mig-rewrite", "optimize_mig changed a PO function");
      return;
    }
  } catch (const std::exception& e) {
    report("mig-conversion", std::string("MIG substrate threw: ") + e.what());
    return;
  }

  // File facade with auto-detection over every AIG-capable extension.
  for (const char* ext : {".v", ".blif", ".aag", ".aig"}) {
    const std::string path = ctx.work_dir + "/roundtrip" + ext;
    try {
      io::write_network(net, path);
      const io::Network back = io::read_network(path);
      if (!back.aig.has_value() || aig::simulate(*back.aig) != reference) {
        report(std::string("aig-file-roundtrip-") + (ext + 1),
               "functional mismatch through write_network/read_network");
        return;
      }
    } catch (const std::exception& e) {
      report(std::string("aig-file-roundtrip-") + (ext + 1),
             std::string("facade round trip threw: ") + e.what());
      return;
    }
  }
}

void run_io_roundtrip(CaseContext& ctx, std::vector<Finding>& out) {
  check_rqfp_roundtrips(ctx, out);
  check_aig_roundtrips(ctx, out);
}

// ---------------------------------------------------------------------
// parser-corruption
// ---------------------------------------------------------------------

/// A fixed, valid RevLib cascade (the generators have no .real writer
/// input; corruption works just as well from a constant seed document).
constexpr const char* kRealTemplate =
    ".version 2.0\n"
    ".numvars 3\n"
    ".variables a b c\n"
    ".begin\n"
    "t3 a b c\n"
    "t2 a b\n"
    "t1 a\n"
    ".end\n";

struct CorpusEntry {
  std::string content;
  const char* extension; // the format's own extension
};

CorpusEntry make_corpus_entry(CaseContext& ctx, util::Rng& rng) {
  switch (rng.below(7)) {
    case 0: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 1);
      return {io::write_rqfp_string(random_netlist(gen)), ".rqfp"};
    }
    case 1: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 2);
      return {io::write_verilog_string(random_aig(gen)), ".v"};
    }
    case 2: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 3);
      return {io::write_blif_string(random_aig(gen)), ".blif"};
    }
    case 3: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 4);
      return {io::write_aiger_string(random_aig(gen)), ".aag"};
    }
    case 4: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 5);
      return {io::write_aiger_binary_string(random_aig(gen)), ".aig"};
    }
    case 5: {
      util::Rng gen = case_rng(ctx, Target::kParserCorruption, 6);
      std::ostringstream pla;
      io::write_pla(random_tables(gen, 3, 2), pla);
      return {pla.str(), ".pla"};
    }
    default:
      return {kRealTemplate, ".real"};
  }
}

/// The contract under test: read_network either succeeds or throws
/// io::ParseError. Returns an empty string on contract compliance and a
/// description of the violation otherwise.
std::string probe_parser(const std::string& path) {
  try {
    (void)io::read_network(path);
    return "";
  } catch (const io::ParseError&) {
    return "";
  } catch (const std::exception& e) {
    return std::string("non-ParseError exception escaped read_network: ") +
           e.what();
  } catch (...) {
    return "non-standard exception escaped read_network";
  }
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void run_parser_corruption(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kParserCorruption, 0);
  CorpusEntry entry = make_corpus_entry(ctx, rng);
  const std::string corrupted = corrupt_bytes(std::move(entry.content), rng);

  // Lie about the extension sometimes: auto-detection must cope with
  // wrong and unknown extensions without misbehaving.
  const char* extensions[] = {entry.extension, ".rqfp", ".v",   ".blif",
                              ".aag",          ".aig",  ".pla", ".real",
                              ".dat"};
  const char* ext = rng.chance(0.6)
                        ? entry.extension
                        : extensions[rng.below(std::size(extensions))];

  const std::string path = ctx.work_dir + "/corrupt" + ext;
  write_file(path, corrupted);
  const std::string violation = probe_parser(path);
  if (violation.empty()) {
    return;
  }

  const auto still_fails = [&](const std::string& bytes) {
    write_file(path, bytes);
    return !probe_parser(path).empty();
  };
  const std::string minimal =
      ctx.do_shrink ? shrink_bytes(corrupted, still_fails, &ctx.shrink_stats)
                    : corrupted;

  Finding f = make_finding(ctx, Target::kParserCorruption, "parser-contract",
                           violation);
  f.reproducer = minimal;
  f.reproducer_ext = ext;
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------
// manifest-corruption
// ---------------------------------------------------------------------

/// The contract the service-state parsers share (docs/FUZZING.md): a
/// damaged batch manifest, result-cache store, or evolve checkpoint must
/// either still parse (corruption can land in comments or produce another
/// valid document) or raise io::ParseError / robust::IntegrityError.
/// Anything else — a different exception type, or a crash the harness
/// would never see us return from — is a finding.
std::string probe_state_parser(
    const char* parser, const std::function<void(const std::string&)>& parse,
    const std::string& bytes) {
  try {
    parse(bytes);
    return "";
  } catch (const io::ParseError&) {
    return "";
  } catch (const robust::IntegrityError&) {
    return "";
  } catch (const std::exception& e) {
    return std::string(parser) +
           " threw a non-contract exception: " + e.what();
  } catch (...) {
    return std::string(parser) + " threw a non-standard exception";
  }
}

std::string seed_manifest(CaseContext& ctx) {
  util::Rng rng = case_rng(ctx, Target::kManifestCorruption, 1);
  std::string text = "# fuzz-generated manifest\n";
  const unsigned jobs = 1 + static_cast<unsigned>(rng.below(4));
  for (unsigned j = 0; j < jobs; ++j) {
    core::SynthesisRequest r;
    r.id = "job" + std::to_string(j);
    if (rng.chance(0.5)) {
      r.circuit = rng.chance(0.5) ? "full_adder" : "circuits/spec.v";
    } else {
      r.spec = random_tables(rng, 2 + static_cast<unsigned>(rng.below(3)),
                             1 + static_cast<unsigned>(rng.below(3)));
    }
    if (rng.chance(0.5)) {
      r.generations = rng.below(100000);
    }
    if (rng.chance(0.3)) {
      r.seed = rng.next();
    }
    if (rng.chance(0.3)) {
      r.cache = rng.chance(0.5) ? core::CachePolicy::kSeed
                                : core::CachePolicy::kOff;
    }
    text += core::to_json(r) + "\n";
  }
  return text;
}

std::string seed_cache_store(CaseContext& ctx) {
  util::Rng rng = case_rng(ctx, Target::kManifestCorruption, 2);
  cache::Store store;
  const unsigned entries = 1 + static_cast<unsigned>(rng.below(3));
  NetlistShape shape;
  shape.max_pis = 4;
  shape.max_gates = 8;
  for (unsigned j = 0; j < entries; ++j) {
    const rqfp::Netlist net = random_netlist(rng, shape);
    store.insert(rqfp::simulate(net), net, "fuzz");
  }
  return store.serialize();
}

std::string seed_checkpoint(CaseContext& ctx) {
  util::Rng rng = case_rng(ctx, Target::kManifestCorruption, 3);
  robust::EvolveCheckpoint ck;
  ck.seed = rng.next();
  ck.lambda = 1 + static_cast<unsigned>(rng.below(8));
  ck.mu = 0.1;
  ck.generations_total = 1 + rng.below(100000);
  ck.generation = rng.below(ck.generations_total);
  ck.evaluations = ck.generation * ck.lambda;
  ck.parent = random_netlist(rng);
  ck.fitness = core::evaluate(ck.parent, rqfp::simulate(ck.parent));
  return robust::serialize_checkpoint(ck);
}

void run_manifest_corruption(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kManifestCorruption, 0);

  std::string content;
  const char* kind;
  const char* ext;
  std::function<void(const std::string&)> parse;
  switch (rng.below(3)) {
    case 0:
      content = seed_manifest(ctx);
      kind = "manifest";
      ext = ".jsonl";
      parse = [](const std::string& b) {
        (void)batch::parse_manifest_string(b);
      };
      break;
    case 1:
      content = seed_cache_store(ctx);
      kind = "cache-store";
      ext = ".rcc";
      parse = [](const std::string& b) {
        (void)cache::Store::parse(b, "fuzz");
      };
      break;
    default:
      content = seed_checkpoint(ctx);
      kind = "checkpoint";
      ext = ".ckpt";
      parse = [](const std::string& b) {
        (void)robust::parse_checkpoint(b);
      };
      break;
  }

  const std::string corrupted = corrupt_bytes(std::move(content), rng);
  const std::string violation = probe_state_parser(kind, parse, corrupted);
  if (violation.empty()) {
    return;
  }

  const auto still_fails = [&](const std::string& bytes) {
    return !probe_state_parser(kind, parse, bytes).empty();
  };
  const std::string minimal =
      ctx.do_shrink ? shrink_bytes(corrupted, still_fails, &ctx.shrink_stats)
                    : corrupted;

  Finding f = make_finding(ctx, Target::kManifestCorruption,
                           std::string(kind) + "-contract", violation);
  f.reproducer = minimal;
  f.reproducer_ext = ext;
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------
// optimizer-differential
// ---------------------------------------------------------------------

void check_delta_walk(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kOptimizerDiff, 0);

  NetlistShape shape;
  shape.max_pis = 4;
  shape.max_gates = 16;
  rqfp::Netlist base = random_netlist(rng, shape);
  const std::vector<tt::TruthTable> spec = rqfp::simulate(base);

  const rqfp::BufferSchedule schedules[] = {
      rqfp::BufferSchedule::kAsap, rqfp::BufferSchedule::kAlap,
      rqfp::BufferSchedule::kBest, rqfp::BufferSchedule::kOptimized};
  core::FitnessOptions fopt;
  fopt.schedule = schedules[rng.below(4)];
  fopt.objective = rng.chance(0.5) ? core::Objective::kPaperLexicographic
                                   : core::Objective::kJjCount;

  rqfp::SimCache sim;
  rqfp::CostCache cost;
  rqfp::build_sim_cache(base, sim);
  rqfp::build_cost_cache(base, fopt.schedule, cost);
  core::Fitness base_fit = core::evaluate(base, spec, fopt);

  const auto pair_finding = [&](const std::string& kind,
                                const std::string& detail,
                                const rqfp::Netlist& parent,
                                const rqfp::Netlist& child) {
    // Differential failures depend on the (base, child) pair; shrinking
    // would have to reduce both in lockstep, so they ship unminimized.
    Finding f = make_finding(ctx, Target::kOptimizerDiff, kind, detail);
    f.reproducer = io::write_rqfp_string(parent);
    f.reproducer_ext = ".rqfp";
    f.reproducer2 = io::write_rqfp_string(child);
    f.reproducer2_ext = ".rqfp";
    out.push_back(std::move(f));
  };

  const unsigned steps = 10 + static_cast<unsigned>(rng.below(21));
  for (unsigned step = 0; step < steps; ++step) {
    rqfp::Netlist child = base;
    core::mutate(child, rng);

    const core::Fitness full = core::evaluate(child, spec, fopt);
    const core::Fitness delta =
        core::evaluate_delta(base, sim, cost, child, spec, fopt);
    if (!fitness_equal(full, delta)) {
      pair_finding("delta-vs-full",
                   "evaluate_delta != evaluate: full=" +
                       describe_fitness(full) +
                       " delta=" + describe_fitness(delta),
                   base, child);
      return;
    }

    const rqfp::Cost cost_full = rqfp::cost_of(child, fopt.schedule);
    const rqfp::Cost cost_delta = rqfp::cost_of_delta(base, child, cost);
    if (!(cost_full == cost_delta)) {
      pair_finding("cost-delta-vs-full",
                   "cost_of_delta != cost_of: full=" + cost_full.to_string() +
                       " delta=" + cost_delta.to_string(),
                   base, child);
      return;
    }

    if (full.better_or_equal(base_fit)) {
      rqfp::update_sim_cache(base, child, sim);
      rqfp::update_cost_cache(base, child, cost);
      base = std::move(child);
      base_fit = full;
    }

    if (rng.chance(0.25)) {
      // Shrink must never change the function of the live cone.
      const auto shrink_changes_function = [](const rqfp::Netlist& n) {
        return rqfp::simulate(core::shrink(n)) != rqfp::simulate(n);
      };
      if (shrink_changes_function(base)) {
        rqfp::Netlist minimal =
            ctx.do_shrink
                ? shrink_netlist(base, shrink_changes_function,
                                 &ctx.shrink_stats)
                : base;
        Finding f = make_finding(ctx, Target::kOptimizerDiff,
                                 "shrink-function-change",
                                 "core::shrink changed the PO functions");
        f.reproducer = io::write_rqfp_string(minimal);
        f.reproducer_ext = ".rqfp";
        out.push_back(std::move(f));
        return;
      }
      const rqfp::Netlist small = core::shrink(base);
      if (small.num_gates() != base.num_gates()) {
        base = small;
        rqfp::build_sim_cache(base, sim);
        rqfp::build_cost_cache(base, fopt.schedule, cost);
        base_fit = core::evaluate(base, spec, fopt);
      }
    }
  }
}

/// Cross-checks a netlist against its specification with all three CEC
/// engines; returns a disagreement description ("" when unanimous and
/// correct, which `net` must be by construction).
std::string engine_disagreement(const rqfp::Netlist& net,
                                std::span<const tt::TruthTable> spec) {
  const bool sim_eq = cec::sim_check(net, spec).all_match;
  const bool bdd_eq = cec::bdd_check(net, spec).equivalent;
  const auto sat = cec::sat_check(net, spec);
  const bool sat_eq = sat.verdict == cec::CecVerdict::kEquivalent;
  if (sat.verdict == cec::CecVerdict::kUndecided) {
    return "sat_check returned kUndecided with no conflict budget";
  }
  if (sim_eq && bdd_eq && sat_eq) {
    return "";
  }
  std::string desc = std::string("engines disagree on net-vs-spec: sim=") +
                     (sim_eq ? "eq" : "neq") +
                     " bdd=" + (bdd_eq ? "eq" : "neq") +
                     " sat=" + (sat_eq ? "eq" : "neq");
  const int eq_votes = int(sim_eq) + int(bdd_eq) + int(sat_eq);
  if (eq_votes == 2) {
    desc += std::string("; minority engine: ") +
            (!sim_eq ? "sim" : (!bdd_eq ? "bdd" : "sat"));
  } else if (eq_votes == 1) {
    desc += std::string("; minority verdict held by: ") +
            (sim_eq ? "sim" : (bdd_eq ? "bdd" : "sat"));
  }
  return desc;
}

void check_paranoid_search(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kOptimizerDiff, 1);

  NetlistShape shape;
  shape.max_pis = 4;
  shape.max_gates = 12;
  const rqfp::Netlist start = random_netlist(rng, shape);
  const std::vector<tt::TruthTable> spec = rqfp::simulate(start);

  core::OptimizerOptions oopt;
  const core::Algorithm algorithms[] = {core::Algorithm::kEvolve,
                                        core::Algorithm::kMultistart,
                                        core::Algorithm::kAnneal};
  oopt.algorithm = algorithms[rng.below(3)];
  oopt.evolve.generations = 60;
  oopt.evolve.lambda = 2;
  oopt.evolve.threads = 1;
  oopt.evolve.seed = rng.next();
  oopt.evolve.paranoia = robust::ParanoiaLevel::kEveryAcceptance;
  oopt.anneal.steps = 200;
  oopt.anneal.seed = rng.next();
  oopt.restarts = 2;
  oopt.limits.deadline_seconds = 2.0;

  const auto start_finding = [&](const std::string& kind,
                                 const std::string& detail) {
    Finding f = make_finding(ctx, Target::kOptimizerDiff, kind, detail);
    f.reproducer = io::write_rqfp_string(start);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
  };

  core::OptimizeResult result;
  try {
    result = core::Optimizer(oopt).run(start, spec);
  } catch (const robust::IntegrityError& e) {
    start_finding("paranoia-violation",
                  std::string("paranoid ") +
                      std::string(core::to_string(oopt.algorithm)) +
                      " raised IntegrityError: " + e.what());
    return;
  }

  const std::string invalid = result.best.validate();
  if (!invalid.empty()) {
    start_finding("optimizer-invariant",
                  "optimizer returned an invalid netlist: " + invalid);
    return;
  }
  const std::string disagree = engine_disagreement(result.best, spec);
  if (!disagree.empty()) {
    Finding f = make_finding(ctx, Target::kOptimizerDiff,
                             "engine-disagreement", disagree);
    f.reproducer = io::write_rqfp_string(result.best);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
  }
}

void check_exact_polish_flow(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kOptimizerDiff, 2);
  const std::vector<tt::TruthTable> spec = random_tables(rng, 3, 2);

  core::FlowOptions fopt;
  fopt.evolve.generations = 300;
  fopt.evolve.lambda = 2;
  fopt.evolve.threads = 1;
  fopt.evolve.seed = rng.next();
  fopt.evolve.paranoia = robust::ParanoiaLevel::kBoundaries;
  fopt.run_exact_polish = true;
  fopt.limits.deadline_seconds = 1.0;

  core::FlowResult result;
  try {
    result = core::synthesize(spec, fopt);
  } catch (const robust::IntegrityError& e) {
    out.push_back(make_finding(ctx, Target::kOptimizerDiff,
                               "paranoia-violation",
                               std::string("exact-polish flow raised "
                                           "IntegrityError: ") +
                                   e.what()));
    return;
  }

  // The flow may stop before reaching the spec under this deadline; when
  // its own fitness claims success, the engines must unanimously concur.
  if (core::evaluate(result.optimized, spec).functionally_correct()) {
    const std::string disagree = engine_disagreement(result.optimized, spec);
    if (!disagree.empty()) {
      Finding f = make_finding(ctx, Target::kOptimizerDiff,
                               "engine-disagreement",
                               "after exact polish: " + disagree);
      f.reproducer = io::write_rqfp_string(result.optimized);
      f.reproducer_ext = ".rqfp";
      out.push_back(std::move(f));
    }
  }
}

void run_optimizer_diff(CaseContext& ctx, std::vector<Finding>& out) {
  check_delta_walk(ctx, out);
  if (!out.empty()) {
    return;
  }
  check_paranoid_search(ctx, out);
  // The exact-polish flow is the most expensive probe: sample it.
  if (out.empty() && ctx.index % 8 == 0) {
    check_exact_polish_flow(ctx, out);
  }
}

// ---------------------------------------------------------------------
// cec-cross
// ---------------------------------------------------------------------

void run_cec_cross(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kCecCross, 0);

  NetlistShape shape;
  shape.max_pis = 5;
  shape.max_gates = 20;
  const rqfp::Netlist a = random_netlist(rng, shape);

  // Self-check: every engine must agree that `a` implements its own
  // simulation tables. This predicate is pure in the netlist → shrinkable.
  const auto self_check_fails = [](const rqfp::Netlist& n) {
    const auto tables = rqfp::simulate(n);
    if (!cec::sim_check(n, tables).all_match) return true;
    if (!cec::bdd_check(n, tables).equivalent) return true;
    return cec::sat_check(n, tables).verdict != cec::CecVerdict::kEquivalent;
  };
  if (self_check_fails(a)) {
    rqfp::Netlist minimal =
        ctx.do_shrink ? shrink_netlist(a, self_check_fails, &ctx.shrink_stats)
                      : a;
    const auto tables = rqfp::simulate(minimal);
    Finding f = make_finding(
        ctx, Target::kCecCross, "self-equivalence",
        "an engine denies net == simulate(net): sim=" +
            std::string(cec::sim_check(minimal, tables).all_match ? "eq"
                                                                  : "neq") +
            " bdd=" +
            (cec::bdd_check(minimal, tables).equivalent ? "eq" : "neq") +
            " sat=" +
            (cec::sat_check(minimal, tables).verdict ==
                     cec::CecVerdict::kEquivalent
                 ? "eq"
                 : "neq"));
    f.reproducer = io::write_rqfp_string(minimal);
    f.reproducer_ext = ".rqfp";
    out.push_back(std::move(f));
    return;
  }

  // Pairwise check against a derived netlist whose ground-truth
  // equivalence exhaustive simulation decides.
  rqfp::Netlist b = a;
  const unsigned variant = static_cast<unsigned>(rng.below(3));
  switch (variant) {
    case 0:
      b = core::shrink(a); // equivalent by contract
      break;
    case 1:
      core::mutate(b, rng); // usually different, sometimes neutral
      break;
    default:
      if (b.num_gates() > 0) {
        robust::inject_config_fault(b, rng); // structurally legal flip
      }
      break;
  }

  const bool truly_equal = rqfp::simulate(a) == rqfp::simulate(b);
  const bool bdd_eq = cec::bdd_check(a, b).equivalent;
  const auto sat = cec::sat_check(a, b);
  const bool sat_eq = sat.verdict == cec::CecVerdict::kEquivalent;
  const bool sat_decided = sat.verdict != cec::CecVerdict::kUndecided;

  if (!sat_decided || bdd_eq != truly_equal || sat_eq != truly_equal) {
    std::string detail =
        std::string("pairwise verdicts diverge from exhaustive simulation "
                    "(variant=") +
        (variant == 0 ? "shrink" : variant == 1 ? "mutate" : "config-fault") +
        "): sim=" + (truly_equal ? "eq" : "neq") +
        " bdd=" + (bdd_eq ? "eq" : "neq") +
        " sat=" + (!sat_decided ? "undecided" : (sat_eq ? "eq" : "neq"));
    const int wrong = int(bdd_eq != truly_equal) + int(sat_eq != truly_equal);
    if (wrong == 1) {
      detail += std::string("; minority engine: ") +
                (bdd_eq != truly_equal ? "bdd" : "sat");
    }
    Finding f =
        make_finding(ctx, Target::kCecCross, "engine-disagreement", detail);
    f.reproducer = io::write_rqfp_string(a);
    f.reproducer_ext = ".rqfp";
    f.reproducer2 = io::write_rqfp_string(b);
    f.reproducer2_ext = ".rqfp";
    out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------
// simd-differential
// ---------------------------------------------------------------------

/// Restores whatever tier was active before the case poked force_tier.
/// Safe even on exceptions: all tiers are bit-identical, so a case that
/// died mid-sweep still leaves a correct dispatcher behind.
struct TierGuard {
  rqfp::simd::Tier saved = rqfp::simd::active_tier();
  ~TierGuard() { rqfp::simd::force_tier(saved); }
};

void run_simd_differential(CaseContext& ctx, std::vector<Finding>& out) {
  util::Rng rng = case_rng(ctx, Target::kSimdDifferential, 0);
  const auto& tiers = rqfp::simd::available_tiers();
  const auto& scalar = rqfp::simd::kernels(rqfp::simd::Tier::kScalar);

  // 1. Raw kernels on random buffers with a ragged length, so every
  // vector tier exercises both its block loop and its scalar tail.
  const std::size_t n = 1 + static_cast<std::size_t>(rng.below(41));
  std::vector<std::uint64_t> a(n), b(n), c(n);
  for (std::size_t w = 0; w < n; ++w) {
    a[w] = rng.next();
    b[w] = rng.next();
    c[w] = rng.next();
  }
  const auto config = static_cast<std::uint16_t>(rng.next() & 0x1FF);
  const std::uint64_t ma = rng.next() & 1 ? ~std::uint64_t{0} : 0;
  const std::uint64_t mb = rng.next() & 1 ? ~std::uint64_t{0} : 0;
  const std::uint64_t mc = rng.next() & 1 ? ~std::uint64_t{0} : 0;
  std::vector<std::uint64_t> ref0(n), ref1(n), ref2(n);
  std::vector<std::uint64_t> got0(n), got1(n), got2(n);
  for (const auto tier : tiers) {
    if (tier == rqfp::simd::Tier::kScalar) {
      continue;
    }
    const auto& k = rqfp::simd::kernels(tier);
    const auto report = [&](const char* kernel) {
      out.push_back(make_finding(
          ctx, Target::kSimdDifferential, "kernel-divergence",
          std::string(kernel) + ": tier '" +
              std::string(rqfp::simd::to_string(tier)) +
              "' disagrees with scalar at length " + std::to_string(n)));
    };
    scalar.gate3(config, a.data(), b.data(), c.data(), ref0.data(),
                 ref1.data(), ref2.data(), n);
    k.gate3(config, a.data(), b.data(), c.data(), got0.data(), got1.data(),
            got2.data(), n);
    if (ref0 != got0 || ref1 != got1 || ref2 != got2) {
      report("gate3");
    }
    scalar.maj3(a.data(), ma, b.data(), mb, c.data(), mc, ref0.data(), n);
    k.maj3(a.data(), ma, b.data(), mb, c.data(), mc, got0.data(), n);
    if (ref0 != got0) {
      report("maj3");
    }
    scalar.and2(a.data(), ma, b.data(), mb, ref0.data(), n);
    k.and2(a.data(), ma, b.data(), mb, got0.data(), n);
    if (ref0 != got0) {
      report("and2");
    }
    if (scalar.xor_popcount(a.data(), b.data(), n) !=
        k.xor_popcount(a.data(), b.data(), n)) {
      report("xor_popcount");
    }
  }
  if (!out.empty()) {
    return;
  }

  // 2. End to end: the full simulation stack under every tier must
  // reproduce the scalar tier bit-for-bit — exhaustive tables, the
  // λ-batched delta path against the sequential one, and pattern sweeps.
  util::Rng net_rng = case_rng(ctx, Target::kSimdDifferential, 1);
  NetlistShape shape;
  shape.max_pis = 5;
  shape.max_gates = 16;
  const rqfp::Netlist base = random_netlist(net_rng, shape);
  std::vector<rqfp::Netlist> children;
  for (unsigned i = 0; i < 4; ++i) {
    children.push_back(base);
    core::mutate(children.back(), net_rng);
  }
  rqfp::SimBatch patterns(base.num_pis(), 3);
  for (std::size_t r = 0; r < patterns.rows(); ++r) {
    for (std::size_t w = 0; w < patterns.words(); ++w) {
      patterns.at(r, w) = net_rng.next();
    }
  }

  TierGuard guard;
  rqfp::simd::force_tier(rqfp::simd::Tier::kScalar);
  const auto spec = rqfp::simulate(base);
  std::vector<std::vector<tt::TruthTable>> child_spec;
  for (const auto& ch : children) {
    child_spec.push_back(rqfp::simulate(ch));
  }
  rqfp::SimBatch po_spec;
  rqfp::simulate_patterns(base, patterns, po_spec);

  for (const auto tier : tiers) {
    rqfp::simd::force_tier(tier);
    const auto report = [&](const char* what) {
      Finding f = make_finding(
          ctx, Target::kSimdDifferential, "tier-divergence",
          std::string(what) + " under tier '" +
              std::string(rqfp::simd::to_string(tier)) +
              "' differs from the scalar tier");
      f.reproducer = io::write_rqfp_string(base);
      f.reproducer_ext = ".rqfp";
      out.push_back(std::move(f));
    };
    if (rqfp::simulate(base) != spec) {
      report("simulate");
      return;
    }
    rqfp::SimCache cache;
    rqfp::build_sim_cache(base, cache);
    rqfp::DeltaBatch batch;
    std::vector<const rqfp::Netlist*> ptrs;
    for (const auto& ch : children) {
      ptrs.push_back(&ch);
    }
    rqfp::simulate_delta_batch(base, ptrs, cache, batch);
    std::vector<tt::TruthTable> po_seq;
    for (std::size_t i = 0; i < children.size(); ++i) {
      rqfp::simulate_delta(base, children[i], cache, po_seq);
      if (po_seq != batch.children[i].po) {
        report("simulate_delta_batch vs simulate_delta");
        return;
      }
      std::vector<tt::TruthTable> full;
      for (std::uint32_t p = 0; p < children[i].num_pos(); ++p) {
        full.push_back(child_spec[i][p]);
      }
      if (po_seq != full) {
        report("simulate_delta vs scalar simulate");
        return;
      }
    }
    rqfp::SimBatch po;
    rqfp::simulate_patterns(base, patterns, po);
    if (!(po == po_spec)) {
      report("simulate_patterns");
      return;
    }
  }
}

// ---------------------------------------------------------------------
// selftest
// ---------------------------------------------------------------------

void run_selftest(CaseContext& ctx, std::vector<Finding>& out) {
  // Deterministically "fails" on every third case so tests can verify the
  // whole pipeline — findings log determinism, reproducer files, exit
  // codes — without a real bug in the tree.
  if (ctx.index % 3 != 0) {
    return;
  }
  util::Rng rng = case_rng(ctx, Target::kSelftest, 0);
  rqfp::Netlist net = random_netlist(rng);
  std::string detail = "synthetic finding (selftest target)";
  if (net.num_gates() > 0) {
    const auto report = robust::inject_config_fault(net, rng);
    detail += ": " + report.describe();
  }
  Finding f = make_finding(ctx, Target::kSelftest, "selftest-finding", detail);
  f.reproducer = io::write_rqfp_string(net);
  f.reproducer_ext = ".rqfp";
  out.push_back(std::move(f));
}

} // namespace

std::string_view to_string(Target target) {
  switch (target) {
    case Target::kIoRoundtrip: return "io-roundtrip";
    case Target::kParserCorruption: return "parser-corruption";
    case Target::kManifestCorruption: return "manifest-corruption";
    case Target::kOptimizerDiff: return "optimizer-differential";
    case Target::kCecCross: return "cec-cross";
    case Target::kSimdDifferential: return "simd-differential";
    case Target::kSelftest: return "selftest";
  }
  return "unknown";
}

Target parse_target(std::string_view name) {
  if (name == "io-roundtrip") return Target::kIoRoundtrip;
  if (name == "parser-corruption") return Target::kParserCorruption;
  if (name == "manifest-corruption") return Target::kManifestCorruption;
  if (name == "optimizer-differential") return Target::kOptimizerDiff;
  if (name == "cec-cross") return Target::kCecCross;
  if (name == "simd-differential") return Target::kSimdDifferential;
  if (name == "selftest") return Target::kSelftest;
  throw std::invalid_argument("fuzz: unknown target '" + std::string(name) +
                              "' (expected io-roundtrip, parser-corruption, "
                              "manifest-corruption, optimizer-differential, "
                              "cec-cross, simd-differential, or selftest)");
}

std::vector<Target> default_targets() {
  return {Target::kIoRoundtrip, Target::kParserCorruption,
          Target::kManifestCorruption, Target::kOptimizerDiff,
          Target::kCecCross, Target::kSimdDifferential};
}

void run_case(Target target, CaseContext& ctx, std::vector<Finding>& out) {
  switch (target) {
    case Target::kIoRoundtrip: run_io_roundtrip(ctx, out); break;
    case Target::kParserCorruption: run_parser_corruption(ctx, out); break;
    case Target::kManifestCorruption:
      run_manifest_corruption(ctx, out);
      break;
    case Target::kOptimizerDiff: run_optimizer_diff(ctx, out); break;
    case Target::kCecCross: run_cec_cross(ctx, out); break;
    case Target::kSimdDifferential: run_simd_differential(ctx, out); break;
    case Target::kSelftest: run_selftest(ctx, out); break;
  }
}

} // namespace rcgp::fuzz
