#include "fuzz/generator.hpp"

#include <cassert>
#include <stdexcept>

#include "rqfp/gate.hpp"

namespace rcgp::fuzz {

rqfp::Netlist random_netlist(util::Rng& rng, const NetlistShape& shape) {
  const unsigned pis =
      static_cast<unsigned>(rng.between(shape.min_pis, shape.max_pis));
  rqfp::Netlist net(pis);

  // Pool of ports no gate input or PO has consumed yet. Drawing inputs
  // from it (and swap-removing on use) keeps the single fan-out invariant
  // by construction; appending each new gate's outputs keeps feed-forward
  // order (a gate can only see ports that already exist).
  std::vector<rqfp::Port> pool;
  pool.reserve(pis + 3 * shape.max_gates);
  for (unsigned i = 1; i <= pis; ++i) {
    pool.push_back(static_cast<rqfp::Port>(i));
  }

  const unsigned gates =
      static_cast<unsigned>(rng.between(shape.min_gates, shape.max_gates));
  for (unsigned g = 0; g < gates; ++g) {
    std::array<rqfp::Port, 3> in{rqfp::kConstPort, rqfp::kConstPort,
                                 rqfp::kConstPort};
    for (unsigned slot = 0; slot < 3; ++slot) {
      if (pool.empty() || rng.chance(shape.const_bias)) {
        in[slot] = rqfp::kConstPort;
        continue;
      }
      const std::size_t pick = rng.below(pool.size());
      in[slot] = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
    }
    const auto config =
        rqfp::InvConfig(static_cast<std::uint16_t>(rng.below(512)));
    const std::uint32_t idx = net.add_gate(in, config);
    for (unsigned k = 0; k < 3; ++k) {
      pool.push_back(net.port_of(idx, k));
    }
  }

  const unsigned pos =
      static_cast<unsigned>(rng.between(shape.min_pos, shape.max_pos));
  for (unsigned o = 0; o < pos; ++o) {
    if (pool.empty()) {
      net.add_po(rqfp::kConstPort);
      continue;
    }
    const std::size_t pick = rng.below(pool.size());
    net.add_po(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
  }

  const std::string problem = net.validate();
  if (!problem.empty()) {
    throw std::logic_error("fuzz::random_netlist generated invalid netlist: " +
                           problem);
  }
  return net;
}

aig::Aig random_aig(util::Rng& rng, const AigShape& shape) {
  aig::Aig a;
  std::vector<aig::Signal> pool;
  pool.push_back(a.const0());

  const unsigned pis =
      static_cast<unsigned>(rng.between(shape.min_pis, shape.max_pis));
  for (unsigned i = 0; i < pis; ++i) {
    pool.push_back(a.create_pi());
  }

  const auto draw = [&]() {
    aig::Signal s = pool[rng.below(pool.size())];
    return rng.chance(shape.invert_chance) ? !s : s;
  };

  const unsigned ands =
      static_cast<unsigned>(rng.between(shape.min_ands, shape.max_ands));
  for (unsigned i = 0; i < ands; ++i) {
    // Structural hashing may fold the AND into an existing signal; the
    // pool just accumulates whatever comes back.
    pool.push_back(a.create_and(draw(), draw()));
  }

  const unsigned pos =
      static_cast<unsigned>(rng.between(shape.min_pos, shape.max_pos));
  for (unsigned o = 0; o < pos; ++o) {
    a.add_po(draw());
  }
  return a;
}

std::vector<tt::TruthTable> random_tables(util::Rng& rng, unsigned vars,
                                          unsigned count) {
  std::vector<tt::TruthTable> tables;
  tables.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    tt::TruthTable t(vars);
    for (std::size_t w = 0; w < t.num_words(); ++w) {
      t.set_word(w, rng.next());
    }
    tables.push_back(std::move(t));
  }
  return tables;
}

std::string corrupt_bytes(std::string blob, util::Rng& rng,
                          unsigned max_ops) {
  const unsigned ops = 1 + static_cast<unsigned>(rng.below(max_ops));
  for (unsigned i = 0; i < ops; ++i) {
    switch (rng.below(6)) {
    case 0: { // flip one bit
      if (blob.empty()) break;
      const std::size_t at = rng.below(blob.size());
      blob[at] = static_cast<char>(blob[at] ^ (1u << rng.below(8)));
      break;
    }
    case 1: { // overwrite one byte with anything (NUL and 0xFF included)
      if (blob.empty()) break;
      blob[rng.below(blob.size())] = static_cast<char>(rng.below(256));
      break;
    }
    case 2: { // delete a range
      if (blob.empty()) break;
      const std::size_t at = rng.below(blob.size());
      const std::size_t len = 1 + rng.below(blob.size() - at);
      blob.erase(at, len);
      break;
    }
    case 3: { // duplicate a range in place
      if (blob.empty()) break;
      const std::size_t at = rng.below(blob.size());
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(blob.size() - at, 32));
      blob.insert(at, blob.substr(at, len));
      break;
    }
    case 4: { // insert random bytes
      const std::size_t at = blob.empty() ? 0 : rng.below(blob.size() + 1);
      const std::size_t len = 1 + rng.below(16);
      std::string junk(len, '\0');
      for (auto& c : junk) {
        c = static_cast<char>(rng.below(256));
      }
      blob.insert(at, junk);
      break;
    }
    default: { // truncate
      blob.resize(rng.below(blob.size() + 1));
      break;
    }
    }
  }
  return blob;
}

} // namespace rcgp::fuzz
