#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rqfp/netlist.hpp"

namespace rcgp::fuzz {

/// Counters of one shrinking session (reported in fuzz.shrink.* metrics).
struct ShrinkStats {
  std::uint32_t attempts = 0; ///< candidate reductions tried
  std::uint32_t accepted = 0; ///< candidates that still reproduced
};

/// Greedy netlist minimization: starting from `failing` — on which
/// `fails` must return true — repeatedly tries to drop primary outputs
/// and disconnect gates (rewiring their consumers to the constant port,
/// then dead-gate shrinking), keeping any candidate on which the failure
/// still reproduces. `fails` must be a pure function of the netlist —
/// re-deriving any secondary inputs itself — or the minimized reproducer
/// will not reproduce. Bounded by `max_attempts` predicate calls.
rqfp::Netlist shrink_netlist(
    const rqfp::Netlist& failing,
    const std::function<bool(const rqfp::Netlist&)>& fails,
    ShrinkStats* stats = nullptr, std::uint32_t max_attempts = 2000);

/// ddmin-style byte-blob minimization for parser findings: tries deleting
/// chunks at decreasing granularity (halves down to single bytes) while
/// `fails` keeps returning true. Same purity contract as above.
std::string shrink_bytes(const std::string& failing,
                         const std::function<bool(const std::string&)>& fails,
                         ShrinkStats* stats = nullptr,
                         std::uint32_t max_attempts = 4000);

} // namespace rcgp::fuzz
