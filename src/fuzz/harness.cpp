#include "fuzz/harness.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rcgp::fuzz {

namespace {

void write_reproducer(const std::string& dir, const std::string& name,
                      const std::string& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("fuzz: cannot write reproducer: " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string case_stem(const Finding& f) {
  return f.target + "-s" + std::to_string(f.seed) + "-c" +
         std::to_string(f.case_index);
}

} // namespace

FuzzSummary run_fuzz(const FuzzOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  const std::vector<Target> targets =
      options.targets.empty() ? default_targets() : options.targets;

  std::error_code ec;
  const std::string work_dir = options.out_dir + "/work";
  std::filesystem::create_directories(work_dir, ec);
  if (ec) {
    throw std::runtime_error("fuzz: cannot create out dir: " +
                             options.out_dir + ": " + ec.message());
  }
  const std::string log_path = options.log_path.empty()
                                   ? options.out_dir + "/findings.jsonl"
                                   : options.log_path;
  FindingsLog log(log_path);

  auto& reg = obs::registry();
  FuzzSummary summary;
  summary.log_path = log_path;

  for (const Target target : targets) {
    obs::Span target_span(std::string("fuzz.") +
                          std::string(to_string(target)));
    const std::string tname(to_string(target));

    const std::uint64_t first =
        options.only_case.value_or(std::uint64_t{0});
    const std::uint64_t last =
        options.only_case ? *options.only_case + 1 : options.cases;
    for (std::uint64_t index = first; index < last; ++index) {
      if (options.budget.stop_requested()) {
        summary.stop_reason = robust::StopReason::kStopRequested;
        break;
      }
      if (options.budget.deadline_seconds > 0.0 &&
          elapsed() >= options.budget.deadline_seconds) {
        summary.stop_reason = robust::StopReason::kTimeLimit;
        break;
      }

      obs::Span case_span("fuzz.case");
      CaseContext ctx;
      ctx.seed = options.seed;
      ctx.index = index;
      ctx.work_dir = work_dir;
      ctx.do_shrink = options.shrink;

      std::vector<Finding> findings;
      try {
        run_case(target, ctx, findings);
      } catch (const std::exception& e) {
        Finding f;
        f.target = tname;
        f.seed = options.seed;
        f.case_index = index;
        f.kind = "unhandled-exception";
        f.detail = e.what();
        findings.push_back(std::move(f));
      }

      ++summary.cases_run;
      reg.counter("fuzz.cases").inc();
      reg.counter("fuzz." + tname + ".cases").inc();
      reg.counter("fuzz.shrink.attempts").inc(ctx.shrink_stats.attempts);
      reg.counter("fuzz.shrink.accepted").inc(ctx.shrink_stats.accepted);

      for (Finding& f : findings) {
        const std::string stem = case_stem(f);
        if (!f.reproducer.empty()) {
          f.reproducer_path = stem + f.reproducer_ext;
          write_reproducer(options.out_dir, f.reproducer_path, f.reproducer);
        }
        if (!f.reproducer2.empty()) {
          f.reproducer2_path = stem + "-b" + f.reproducer2_ext;
          write_reproducer(options.out_dir, f.reproducer2_path,
                           f.reproducer2);
        }
        f.repro_command = "rcgp fuzz --targets=" + f.target +
                          " --seed=" + std::to_string(f.seed) +
                          " --case=" + std::to_string(f.case_index);
        log.append(f);
        ++summary.findings;
        reg.counter("fuzz.findings").inc();
        reg.counter("fuzz." + tname + ".findings").inc();
        if (options.on_finding) {
          options.on_finding(f);
        }
      }
    }
    if (summary.stop_reason != robust::StopReason::kCompleted) {
      break;
    }
  }

  summary.seconds = elapsed();
  reg.gauge("fuzz.seconds").add(summary.seconds);
  return summary;
}

} // namespace rcgp::fuzz
