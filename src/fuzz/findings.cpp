#include "fuzz/findings.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace rcgp::fuzz {

std::string to_json(const Finding& finding) {
  obs::json::Writer w;
  w.begin_object()
      .field("target", finding.target)
      .field("seed", finding.seed)
      .field("case", finding.case_index)
      .field("kind", finding.kind)
      .field("detail", finding.detail);
  if (!finding.reproducer_path.empty()) {
    w.field("reproducer", finding.reproducer_path);
  }
  if (!finding.reproducer2_path.empty()) {
    w.field("reproducer2", finding.reproducer2_path);
  }
  if (!finding.repro_command.empty()) {
    w.field("repro", finding.repro_command);
  }
  w.end_object();
  return w.str();
}

FindingsLog::FindingsLog(const std::string& path) {
  if (path.empty()) {
    return;
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("fuzz: cannot open findings log: " + path);
  }
}

void FindingsLog::append(const Finding& finding) {
  ++lines_;
  if (!out_.is_open()) {
    return;
  }
  out_ << to_json(finding) << '\n';
  out_.flush(); // crash safety: a killed run keeps every prior finding
}

} // namespace rcgp::fuzz
