#pragma once

#include <cstdint>
#include <fstream>
#include <string>

namespace rcgp::fuzz {

/// One fuzzing failure. Findings are value objects: targets fill the
/// diagnostic fields, the harness adds the reproducer path and repro
/// command, and the log serializes them. Deliberately no timestamps or
/// durations — a findings log must be bit-identical across runs of the
/// same (seed, cases) so CI diffs and dedup work (docs/FUZZING.md).
struct Finding {
  std::string target;           ///< target name ("io-roundtrip", ...)
  std::uint64_t seed = 0;       ///< harness seed
  std::uint64_t case_index = 0; ///< case within the target's stream
  std::string kind;             ///< stable failure class, kebab-case
  std::string detail;           ///< human-readable specifics

  /// Minimized reproducer artifact (file contents + extension with dot).
  /// Empty content = no artifact (the repro command alone suffices).
  std::string reproducer;
  std::string reproducer_ext;
  /// Secondary artifact for differential findings that need a pair of
  /// inputs (e.g. base + child netlists).
  std::string reproducer2;
  std::string reproducer2_ext;

  // ---- filled by the harness ----
  std::string reproducer_path;  ///< file name under out_dir (no directory)
  std::string reproducer2_path;
  std::string repro_command;    ///< one-line `rcgp fuzz ...` invocation
};

/// Deterministic single-line JSON record of a finding.
std::string to_json(const Finding& finding);

/// Crash-safe JSONL findings log: every append is written and flushed
/// immediately, so a crashing or killed fuzz run loses at most nothing.
class FindingsLog {
public:
  /// Opens (truncates) `path`; empty path = log disabled (append no-ops).
  explicit FindingsLog(const std::string& path);

  void append(const Finding& finding);
  std::uint64_t lines_written() const { return lines_; }

private:
  std::ofstream out_;
  std::uint64_t lines_ = 0;
};

} // namespace rcgp::fuzz
