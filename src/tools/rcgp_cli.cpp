// rcgp — command-line front-end to the RCGP synthesis framework.
//
//   rcgp synth <input> [options]   synthesize an RQFP circuit
//   rcgp batch <manifest> [options] run a manifest of synthesis jobs
//                                  across a worker pool (docs/BATCH.md)
//   rcgp fuzz [options]            continuous differential fuzzing of the
//                                  io/optimizer/CEC layers (docs/FUZZING.md)
//   rcgp exact <input> [options]   SAT-based exact synthesis (baseline)
//   rcgp cec <a.rqfp> <b.rqfp>     equivalence check two RQFP netlists
//   rcgp stats <x.rqfp>            cost metrics of an RQFP netlist
//   rcgp list                      list built-in benchmark names
//   rcgp version                   print version information
//
// <input> is a file (.v .blif .aag .pla .real .rqfp by extension) or the
// name of a built-in benchmark (see `rcgp list`).
//
// Observability (see docs/OBSERVABILITY.md):
//   synth --trace-out=t.jsonl    JSONL evolution trace (one event/line)
//   synth --metrics-out=m.json   metrics registry + per-phase wall times
//   synth --profile-out=p.json   span profile as Chrome trace-event JSON
//                                (loadable in ui.perfetto.dev)
//   synth --prom-out=m.prom      Prometheus text exposition snapshot
//   synth --metrics-snapshot-every=SECONDS
//                                periodic atomic re-export of --metrics-out
//                                and --prom-out while the run is live
//   synth --progress             live improvements on stderr
//   batch                        same --trace-out/--metrics-out/--profile-out/
//                                --prom-out/--metrics-snapshot-every surface
//   report --profile= --trace= --metrics=
//                                human-readable run report from any subset
//                                of the exported artifacts
//   stats/cec --json             machine-readable records on stdout
//
// Parallelism (see docs/PARALLELISM.md):
//   synth --threads=N            λ-parallel offspring evaluation (0 = all
//                                hardware threads, the default). Results
//                                are bit-identical for every thread count.
//   synth --optimizer=NAME       evolve | multistart | anneal | window
//   synth --restarts=N           independent restarts for --optimizer=multistart
//
// Robustness (see docs/ROBUSTNESS.md):
//   synth --checkpoint=c.ckpt    crash-safe periodic state snapshots
//   synth --checkpoint-interval=N  generations between snapshots
//   synth --resume               continue from --checkpoint bit-identically
//   synth --deadline=SECONDS     wall-clock budget (clean best-so-far exit)
//   synth --paranoia=LEVEL       off | boundaries | all invariant checking
//   SIGINT/SIGTERM stop the run cooperatively: the checkpoint is flushed
//   and the best-so-far netlist written. Exit codes: 0 ok, 1 error or not
//   equivalent, 2 usage, 3 interrupted by signal, 4 integrity violation.

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "aqfp/aqfp.hpp"
#include "batch/manifest.hpp"
#include "batch/runner.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/bdd_cec.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "exact/exact_rqfp.hpp"
#include "fuzz/harness.hpp"
#include "io/io.hpp"
#include "io/rqfp_writer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "robust/integrity.hpp"
#include "robust/stop.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/energy.hpp"
#include "rqfp/reversibility.hpp"
#include "version.hpp"

namespace {

using namespace rcgp;

/// Matches `--name=value` (returns true, sets `value`) for option parsing.
bool opt_value(const std::string& arg, const char* name, std::string& value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

/// Shared --profile-out / --prom-out / --metrics-snapshot-every surface of
/// the synth and batch subcommands: span profiling around the run, a
/// Prometheus text snapshot after it, and an optional periodic snapshot
/// writer while it is live.
struct ProfileFlags {
  std::string profile_path;
  std::string prom_path;
  double snapshot_every = 0.0;

  bool parse(const std::string& arg) {
    std::string v;
    if (opt_value(arg, "--profile-out", profile_path) ||
        opt_value(arg, "--prom-out", prom_path)) {
      return true;
    }
    if (opt_value(arg, "--metrics-snapshot-every", v)) {
      snapshot_every = std::stod(v);
      return true;
    }
    return false;
  }

  /// Call before the run: turns the span profiler on and starts the
  /// periodic snapshotter (which re-exports `metrics_path` as a bare
  /// registry document and `prom_path` as Prometheus text).
  void begin(const std::string& metrics_path) {
    if (!profile_path.empty()) {
      obs::set_thread_name("main");
      obs::set_profiling_enabled(true);
    }
    if (snapshot_every > 0.0 &&
        (!metrics_path.empty() || !prom_path.empty())) {
      snapshotter_ = std::make_unique<obs::MetricsSnapshotter>(
          obs::MetricsSnapshotter::Options{metrics_path, prom_path,
                                           snapshot_every});
    }
  }

  /// Call after the run: stops the snapshotter (one final snapshot — the
  /// caller's own final metrics write may then overwrite it with a richer
  /// document) and writes the profile and Prometheus outputs. Returns
  /// false on an I/O failure, with the message already printed.
  bool finish(const char* cmd) {
    snapshotter_.reset();
    if (!profile_path.empty()) {
      obs::set_profiling_enabled(false);
      if (!obs::write_chrome_trace(profile_path)) {
        std::fprintf(stderr, "%s: cannot write %s\n", cmd,
                     profile_path.c_str());
        return false;
      }
      std::printf("wrote %s (%zu spans)\n", profile_path.c_str(),
                  obs::profile_spans().size());
    }
    if (!prom_path.empty()) {
      if (!obs::registry().write_prometheus(prom_path)) {
        std::fprintf(stderr, "%s: cannot write %s\n", cmd,
                     prom_path.c_str());
        return false;
      }
      std::printf("wrote %s\n", prom_path.c_str());
    }
    return true;
  }

private:
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
};

/// Writes the synth metrics document: flow timing breakdown + the full
/// metrics registry snapshot.
bool write_synth_metrics(const std::string& path,
                         const core::FlowResult& result) {
  obs::json::Writer w;
  w.begin_object();
  w.key("flow").begin_object();
  w.field("seconds_total", result.seconds_total);
  w.key("phases").begin_object();
  for (const auto& r : result.phases) {
    if (r.depth == 0) {
      w.field(r.path, r.seconds);
    }
  }
  w.end_object();
  w.key("nested_phases").begin_object();
  for (const auto& r : result.phases) {
    if (r.depth > 0) {
      w.field(r.path, r.seconds);
    }
  }
  w.end_object();
  w.key("evolution").begin_object();
  w.field("generations_run", result.evolution.generations_run);
  w.field("evaluations", result.evolution.evaluations);
  w.field("improvements", result.evolution.improvements);
  w.field("sat_confirmations", result.evolution.sat_confirmations);
  w.field("sat_cec_conflicts", result.evolution.sat_cec_conflicts);
  w.end_object();
  w.end_object();
  w.key("metrics");
  // The registry snapshot is itself a complete JSON object; splice it in.
  const std::string registry_json = obs::registry().to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const std::string head = w.str();
  std::fwrite(head.data(), 1, head.size(), f);
  std::fwrite(registry_json.data(), 1, registry_json.size(), f);
  std::fputs("}\n", f);
  std::fclose(f);
  return true;
}

/// Loads an input as truth tables: a recognized circuit-file extension
/// goes through the io facade, anything else is a built-in benchmark name.
std::vector<tt::TruthTable> load_spec(const std::string& input) {
  if (io::format_from_extension(input) != io::Format::kAuto) {
    return io::read_network(input).to_tables();
  }
  return benchmarks::get(input).spec; // throws with a clear message
}

int cmd_list() {
  std::printf("Table 1 (small):");
  for (const auto& n : benchmarks::table1_names()) {
    std::printf(" %s", n.c_str());
  }
  std::printf("\nTable 2 (large):");
  for (const auto& n : benchmarks::table2_names()) {
    std::printf(" %s", n.c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: rcgp synth <input> [-g N] [-s seed] [-o out.rqfp] "
                 "[--dot out.dot] [--no-cgp] [--polish] [--pack]\n"
                 "                 [--threads=N] "
                 "[--optimizer=evolve|multistart|anneal|window] "
                 "[--restarts=N]\n"
                 "                 [--trace-out=t.jsonl] "
                 "[--metrics-out=m.json] [--heartbeat=N] [--progress]\n"
                 "                 [--profile-out=p.json] [--prom-out=m.prom] "
                 "[--metrics-snapshot-every=SECONDS]\n"
                 "                 [--checkpoint=c.ckpt] "
                 "[--checkpoint-interval=N] [--resume] [--deadline=SECONDS]\n"
                 "                 [--paranoia=off|boundaries|all]\n");
    return 2;
  }
  const std::string input = args[0];
  core::FlowOptions opt;
  opt.evolve.generations = 50000;
  std::string out_path;
  std::string dot_path;
  std::string trace_path;
  std::string metrics_path;
  ProfileFlags prof;
  bool progress = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (args[i] == "-g" && i + 1 < args.size()) {
      opt.evolve.generations = std::stoull(args[++i]);
    } else if (args[i] == "-s" && i + 1 < args.size()) {
      opt.evolve.seed = std::stoull(args[++i]);
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--dot" && i + 1 < args.size()) {
      dot_path = args[++i];
    } else if (args[i] == "--no-cgp") {
      opt.run_cgp = false;
    } else if (args[i] == "--polish") {
      opt.run_exact_polish = true;
    } else if (args[i] == "--pack") {
      opt.pack_shared_fanins = true;
    } else if (opt_value(args[i], "--trace-out", trace_path) ||
               opt_value(args[i], "--metrics-out", metrics_path)) {
      // value captured
    } else if (args[i] == "--trace-out" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (opt_value(args[i], "--heartbeat", v)) {
      opt.evolve.trace_heartbeat = std::stoull(v);
    } else if (args[i] == "--progress") {
      progress = true;
    } else if (opt_value(args[i], "--threads", v)) {
      opt.evolve.threads = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--optimizer", v)) {
      opt.optimizer = core::parse_algorithm(v);
    } else if (opt_value(args[i], "--restarts", v)) {
      opt.restarts = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--checkpoint", v)) {
      opt.limits.checkpoint_path = v;
    } else if (opt_value(args[i], "--checkpoint-interval", v)) {
      opt.limits.checkpoint_interval = std::stoull(v);
    } else if (args[i] == "--resume") {
      opt.resume = true;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.limits.deadline_seconds = std::stod(v);
    } else if (opt_value(args[i], "--paranoia", v)) {
      opt.evolve.paranoia = robust::parse_paranoia(v);
    } else {
      std::fprintf(stderr, "synth: unknown option %s\n", args[i].c_str());
      return 2;
    }
  }
  if (opt.resume && opt.limits.checkpoint_path.empty()) {
    std::fprintf(stderr, "synth: --resume requires --checkpoint=PATH\n");
    return 2;
  }
  // First SIGINT/SIGTERM requests a cooperative stop (best-so-far is
  // written and the checkpoint flushed); a second one force-kills.
  static robust::StopToken signal_token;
  opt.limits.stop = &robust::install_signal_stop(signal_token);

  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "synth: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace->attach_to_log();
    opt.evolve.trace = trace.get();
  }
  if (progress) {
    opt.evolve.on_improvement = [](std::uint64_t gen,
                                   const core::Fitness& fit) {
      std::fprintf(stderr, "  gen %llu: %s\n",
                   static_cast<unsigned long long>(gen),
                   fit.to_string().c_str());
    };
  }

  const auto spec = load_spec(input);
  prof.begin(metrics_path);
  const auto r = core::synthesize(spec, opt);
  const bool prof_ok = prof.finish("synth");
  std::printf("init: %s\n", r.initial_cost.to_string().c_str());
  std::printf("rcgp: %s (%.2fs)\n", r.optimized_cost.to_string().c_str(),
              r.seconds_total);
  const auto check = cec::sim_check(r.optimized, spec);
  std::printf("equivalent: %s\n", check.all_match ? "yes" : "NO");
  const bool interrupted = signal_token.stop_requested();
  if (interrupted) {
    std::fprintf(stderr, "synth: interrupted by signal — best-so-far kept%s\n",
                 opt.limits.checkpoint_path.empty()
                     ? ""
                     : ", checkpoint flushed");
  }
  if (!metrics_path.empty()) {
    if (!write_synth_metrics(metrics_path, r)) {
      std::fprintf(stderr, "synth: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (trace) {
    std::printf("wrote %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(trace->lines_written()));
  }
  if (!out_path.empty()) {
    // Format follows the extension (.rqfp / .v / .dot); an unrecognized
    // extension keeps the historical default of .rqfp interchange.
    const io::Format f = io::format_from_extension(out_path);
    io::write_network(r.optimized, out_path,
                      f == io::Format::kAuto ? io::Format::kRqfp : f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!dot_path.empty()) {
    io::write_network(r.optimized, dot_path, io::Format::kDot);
    std::printf("wrote %s\n", dot_path.c_str());
  }
  if (!check.all_match || !prof_ok) {
    return 1;
  }
  return interrupted ? 3 : 0;
}

int cmd_batch(const std::vector<std::string>& args) {
  std::string manifest_path;
  std::string metrics_path;
  std::string trace_path;
  ProfileFlags prof;
  batch::BatchOptions opt;
  bool usage_error = args.empty();
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (opt_value(args[i], "--trace-out", trace_path)) {
      // value captured
    } else if (opt_value(args[i], "--manifest", v)) {
      manifest_path = v;
    } else if (opt_value(args[i], "--jobs", v)) {
      opt.workers = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--out-dir", v)) {
      opt.out_dir = v;
    } else if (args[i] == "--resume") {
      opt.resume = true;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.budget.deadline_seconds = std::stod(v);
    } else if (opt_value(args[i], "--retries", v)) {
      opt.default_retries = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--checkpoint-interval", v)) {
      opt.checkpoint_interval = std::stoull(v);
    } else if (opt_value(args[i], "--generations", v)) {
      opt.default_generations = std::stoull(v);
    } else if (opt_value(args[i], "--threads-per-job", v)) {
      opt.threads_per_job = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--metrics-out", v)) {
      metrics_path = v;
    } else if (i == 0 && args[i][0] != '-') {
      manifest_path = args[i]; // positional manifest
    } else {
      std::fprintf(stderr, "batch: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (manifest_path.empty()) {
    usage_error = true;
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp batch <manifest.jsonl> [--manifest=FILE] "
                 "[--jobs=N] [--out-dir=DIR] [--resume]\n"
                 "                  [--deadline=SECONDS] [--retries=N] "
                 "[--checkpoint-interval=N]\n"
                 "                  [--generations=N] [--threads-per-job=N] "
                 "[--metrics-out=m.json] [--trace-out=t.jsonl]\n"
                 "                  [--profile-out=p.json] [--prom-out=m.prom] "
                 "[--metrics-snapshot-every=SECONDS]\n");
    return 2;
  }
  // First SIGINT/SIGTERM interrupts the batch cooperatively (running jobs
  // checkpoint and are re-run by --resume); a second one force-kills.
  static robust::StopToken signal_token;
  opt.budget.stop = &robust::install_signal_stop(signal_token);

  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "batch: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace->attach_to_log();
    opt.trace = trace.get();
  }

  const auto manifest = batch::parse_manifest_file(manifest_path);
  const unsigned total = static_cast<unsigned>(manifest.jobs.size());
  opt.on_record = [total](const batch::JobRecord& rec) {
    std::printf("%s: %s%s (gates=%u garbage=%u jjs=%llu, %.2fs, worker %u)\n",
                rec.id.c_str(),
                rec.ok          ? "ok"
                : rec.final_record ? "FAILED"
                                   : "interrupted",
                rec.error.empty() ? "" : (" — " + rec.error).c_str(),
                rec.n_r, rec.n_g, static_cast<unsigned long long>(rec.jjs),
                rec.seconds, rec.worker);
    std::fflush(stdout);
  };
  prof.begin(metrics_path);
  const auto summary = batch::run_batch(manifest, opt);
  if (trace) {
    trace->event("batch_end")
        .field("total", summary.total)
        .field("done", summary.done)
        .field("failed", summary.failed)
        .field("skipped", summary.skipped)
        .field("unrun", summary.unrun)
        .field("seconds", summary.seconds)
        .field("stop_reason", robust::to_string(summary.stop_reason));
  }
  const bool prof_ok = prof.finish("batch");

  std::printf("batch: %u jobs — %u done, %u failed, %u skipped, %u unrun "
              "(%.2fs)\n",
              summary.total, summary.done, summary.failed, summary.skipped,
              summary.unrun, summary.seconds);
  std::printf("results: %s\n", summary.results_path.c_str());
  if (summary.stop_reason != robust::StopReason::kCompleted) {
    std::fprintf(stderr, "batch: stopped early (%s) — rerun with --resume "
                         "to finish the remaining jobs\n",
                 robust::to_string(summary.stop_reason).c_str());
  }
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "batch: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (trace) {
    std::printf("wrote %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(trace->lines_written()));
  }
  if (summary.stop_reason != robust::StopReason::kCompleted) {
    return 3;
  }
  return summary.failed == 0 && prof_ok ? 0 : 1;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  fuzz::FuzzOptions opt;
  std::string metrics_path;
  ProfileFlags prof;
  bool usage_error = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (opt_value(args[i], "--targets", v)) {
      opt.targets.clear();
      std::size_t start = 0;
      while (start <= v.size()) {
        const std::size_t comma = v.find(',', start);
        const std::string name =
            v.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!name.empty()) {
          opt.targets.push_back(fuzz::parse_target(name));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (opt_value(args[i], "--seed", v)) {
      opt.seed = std::stoull(v);
    } else if (opt_value(args[i], "--cases", v)) {
      opt.cases = std::stoull(v);
    } else if (opt_value(args[i], "--case", v)) {
      opt.only_case = std::stoull(v);
    } else if (opt_value(args[i], "--out-dir", v)) {
      opt.out_dir = v;
    } else if (opt_value(args[i], "--log", v)) {
      opt.log_path = v;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.budget.deadline_seconds = std::stod(v);
    } else if (args[i] == "--no-shrink") {
      opt.shrink = false;
    } else if (opt_value(args[i], "--metrics-out", v)) {
      metrics_path = v;
    } else {
      std::fprintf(stderr, "fuzz: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp fuzz [--targets=T1,T2,...] [--seed=S] "
                 "[--cases=N] [--case=K]\n"
                 "                 [--out-dir=DIR] [--log=findings.jsonl] "
                 "[--deadline=SECONDS] [--no-shrink]\n"
                 "                 [--metrics-out=m.json] "
                 "[--profile-out=p.json] [--prom-out=m.prom]\n"
                 "  targets: io-roundtrip parser-corruption "
                 "optimizer-differential cec-cross selftest\n"
                 "           (default: all but selftest)\n"
                 "  Every case is reproducible from (--seed, --case) alone; "
                 "findings print their exact\n"
                 "  repro command and ship a minimized reproducer under "
                 "--out-dir (docs/FUZZING.md).\n");
    return 2;
  }
  static robust::StopToken signal_token;
  opt.budget.stop = &robust::install_signal_stop(signal_token);

  opt.on_finding = [](const fuzz::Finding& f) {
    std::printf("FINDING %s case %llu [%s]: %s\n  reproducer: %s\n"
                "  repro: %s\n",
                f.target.c_str(),
                static_cast<unsigned long long>(f.case_index), f.kind.c_str(),
                f.detail.c_str(),
                f.reproducer_path.empty() ? "(none)"
                                          : f.reproducer_path.c_str(),
                f.repro_command.c_str());
    std::fflush(stdout);
  };

  prof.begin(metrics_path);
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(opt);
  const bool prof_ok = prof.finish("fuzz");

  std::printf("fuzz: %llu cases, %llu findings (%.2fs, %s)\n",
              static_cast<unsigned long long>(summary.cases_run),
              static_cast<unsigned long long>(summary.findings),
              summary.seconds,
              robust::to_string(summary.stop_reason).c_str());
  std::printf("findings log: %s\n", summary.log_path.c_str());
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "fuzz: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (summary.stop_reason == robust::StopReason::kStopRequested) {
    return 3;
  }
  return (summary.findings == 0 && prof_ok) ? 0 : 1;
}

int cmd_exact(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: rcgp exact <input> [-m max_gates] [-t seconds]\n");
    return 2;
  }
  exact::ExactParams params;
  params.max_gates = 5;
  params.time_limit_seconds = 60;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-m" && i + 1 < args.size()) {
      params.max_gates = static_cast<std::uint32_t>(std::stoul(args[++i]));
    } else if (args[i] == "-t" && i + 1 < args.size()) {
      params.time_limit_seconds = std::stod(args[++i]);
    } else {
      std::fprintf(stderr, "exact: unknown option %s\n", args[i].c_str());
      return 2;
    }
  }
  const auto spec = load_spec(args[0]);
  const auto r = exact::exact_synthesize(spec, params);
  switch (r.status) {
    case exact::ExactStatus::kSolved:
      std::printf("optimal: %u gates, %u garbage (%.2fs, %llu SAT calls)\n",
                  r.gates, r.garbage, r.seconds,
                  static_cast<unsigned long long>(r.sat_calls));
      std::printf("%s", io::write_rqfp_string(*r.netlist).c_str());
      return 0;
    case exact::ExactStatus::kUnsat:
      std::printf("no realization within %u gates\n", params.max_gates);
      return 1;
    case exact::ExactStatus::kTimeout:
      std::printf("timeout after %.2fs\n", r.seconds);
      return 1;
  }
  return 1;
}

int cmd_cec(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  bool json = false;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "usage: rcgp cec <a.rqfp> <b.rqfp> [--json]\n");
    return 2;
  }
  const auto a = *io::read_network(files[0], io::Format::kRqfp).rqfp;
  const auto b = *io::read_network(files[1], io::Format::kRqfp).rqfp;
  const auto sat = cec::sat_check(a, b);
  const auto bdd = cec::bdd_check(a, b);
  const bool equal = sat.verdict == cec::CecVerdict::kEquivalent;
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("a", files[0]);
    w.field("b", files[1]);
    w.field("equivalent", equal);
    w.field("sat_verdict",
            sat.verdict == cec::CecVerdict::kEquivalent      ? "equivalent"
            : sat.verdict == cec::CecVerdict::kNotEquivalent ? "not_equivalent"
                                                             : "undecided");
    w.field("bdd_equivalent", bdd.equivalent);
    w.field("sat_conflicts", sat.conflicts);
    w.key("counterexample");
    if (sat.counterexample) {
      w.value(static_cast<std::uint64_t>(*sat.counterexample));
    } else {
      w.null();
    }
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return equal ? 0 : 1;
  }
  std::printf("SAT: %s, BDD: %s\n",
              equal ? "equivalent" : "NOT equivalent",
              bdd.equivalent ? "equivalent" : "NOT equivalent");
  if (!equal && sat.counterexample) {
    std::printf("counterexample: input %llu\n",
                static_cast<unsigned long long>(*sat.counterexample));
  }
  return equal ? 0 : 1;
}

int cmd_report(const std::vector<std::string>& args) {
  // Run-report mode: ingest any subset of a run's exported artifacts.
  obs::RunReportInputs run_inputs;
  bool run_mode = false;
  std::vector<std::string> positional;
  for (const auto& a : args) {
    if (opt_value(a, "--profile", run_inputs.profile_path) ||
        opt_value(a, "--trace", run_inputs.trace_path) ||
        opt_value(a, "--metrics", run_inputs.metrics_path)) {
      run_mode = true;
    } else {
      positional.push_back(a);
    }
  }
  if (run_mode) {
    if (!positional.empty()) {
      std::fprintf(stderr, "report: run-report mode takes no netlist\n");
      return 2;
    }
    std::fputs(obs::run_report(run_inputs).c_str(), stdout);
    return 0;
  }
  if (positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: rcgp report <x.rqfp|benchmark>\n"
                 "       rcgp report [--profile=p.json] [--trace=t.jsonl] "
                 "[--metrics=m.json]\n");
    return 2;
  }
  rqfp::Netlist net;
  const std::string& input = positional[0];
  if (io::format_from_extension(input) == io::Format::kRqfp) {
    net = *io::read_network(input, io::Format::kRqfp).rqfp;
  } else {
    // Synthesize the benchmark's initialization baseline for reporting.
    core::FlowOptions opt;
    opt.run_cgp = false;
    net = core::synthesize(load_spec(input), opt).initial;
  }
  const auto cost = rqfp::cost_of(net);
  std::printf("%s\n", cost.to_string().c_str());
  const auto cells = aqfp::expand(net);
  std::printf("AQFP cells: %u splitters, %u majorities, %u buffers "
              "(%u JJs, %u half-phases, %s)\n",
              cells.count(aqfp::CellKind::kSplitter),
              cells.count(aqfp::CellKind::kMajority),
              cells.count(aqfp::CellKind::kBuffer), cells.total_jjs(),
              cells.max_phase(),
              cells.validate().empty() ? "valid" : "INVALID");
  const auto rev = rqfp::analyze_reversibility(net);
  std::printf("reversibility: %s (%.3f bits erased, %u boundary outputs)\n",
              rev.information_preserving ? "information preserving"
                                         : "lossy",
              rev.erased_bits, rev.boundary_outputs);
  const auto energy = rqfp::estimate_energy(net);
  std::printf("energy @%.1fK: Landauer floor %.3e J, switching %.3e J\n",
              energy.temperature_kelvin, energy.landauer_floor,
              energy.switching_estimate);
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  bool json = false;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) {
    std::fprintf(stderr, "usage: rcgp stats <x.rqfp> [--json]\n");
    return 2;
  }
  const auto net = *io::read_network(files[0], io::Format::kRqfp).rqfp;
  const auto problem = net.validate();
  const auto cost = rqfp::cost_of(net);
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("file", files[0]);
    w.field("pis", net.num_pis());
    w.field("pos", net.num_pos());
    w.field("gates", net.num_gates());
    w.key("cost").begin_object();
    w.field("n_r", cost.n_r);
    w.field("n_b", cost.n_b);
    w.field("jjs", cost.jjs);
    w.field("n_d", cost.n_d);
    w.field("n_g", cost.n_g);
    w.end_object();
    w.field("legal", problem.empty());
    if (!problem.empty()) {
      w.field("problem", problem);
    }
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("pis=%u pos=%u gates=%u\n", net.num_pis(), net.num_pos(),
              net.num_gates());
  std::printf("%s\n", cost.to_string().c_str());
  std::printf("legal: %s%s\n", problem.empty() ? "yes" : "NO — ",
              problem.c_str());
  return 0;
}

int cmd_version(const std::vector<std::string>& args) {
  const bool json = !args.empty() && args[0] == "--json";
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("name", "rcgp");
    w.field("version", kVersionString);
    w.field("major", kVersionMajor);
    w.field("minor", kVersionMinor);
    w.field("patch", kVersionPatch);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("rcgp %s\n", kVersionString);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: rcgp <synth|batch|fuzz|exact|cec|stats|report|list|version> "
        "[args...]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "list") {
      return cmd_list();
    }
    if (cmd == "synth") {
      return cmd_synth(args);
    }
    if (cmd == "batch") {
      return cmd_batch(args);
    }
    if (cmd == "fuzz") {
      return cmd_fuzz(args);
    }
    if (cmd == "exact") {
      return cmd_exact(args);
    }
    if (cmd == "cec") {
      return cmd_cec(args);
    }
    if (cmd == "stats") {
      return cmd_stats(args);
    }
    if (cmd == "report") {
      return cmd_report(args);
    }
    if (cmd == "version" || cmd == "--version") {
      return cmd_version(args);
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const robust::IntegrityError& e) {
    std::fprintf(stderr, "integrity error: %s\n", e.what());
    if (!e.netlist_dump().empty()) {
      std::fprintf(stderr, "offending netlist:\n%s",
                   e.netlist_dump().c_str());
    }
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
