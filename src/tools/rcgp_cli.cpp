// rcgp — command-line front-end to the RCGP synthesis framework.
//
//   rcgp synth <input> [options]   synthesize an RQFP circuit
//   rcgp batch <manifest> [options] run a manifest of synthesis jobs
//                                  across a worker pool (docs/BATCH.md)
//   rcgp fuzz [options]            continuous differential fuzzing of the
//                                  io/optimizer/CEC layers (docs/FUZZING.md)
//   rcgp serve [options]           synthesis daemon on a Unix socket,
//                                  NDJSON request/response (docs/SERVICE.md)
//   rcgp client [requests.jsonl]   submit request lines to a running daemon
//   rcgp cache <warm|stats|verify> manage the NPN-canonical result cache
//   rcgp exact <input> [options]   SAT-based exact synthesis (baseline)
//   rcgp cec <a.rqfp> <b.rqfp>     equivalence check two RQFP netlists
//   rcgp stats <x.rqfp>            cost metrics of an RQFP netlist
//   rcgp list                      list built-in benchmark names
//   rcgp version                   print version information
//
// <input> is a file (.v .blif .aag .pla .real .rqfp by extension) or the
// name of a built-in benchmark (see `rcgp list`).
//
// Observability (see docs/OBSERVABILITY.md):
//   synth --trace-out=t.jsonl    JSONL evolution trace (one event/line)
//   synth --metrics-out=m.json   metrics registry + per-phase wall times
//   synth --profile-out=p.json   span profile as Chrome trace-event JSON
//                                (loadable in ui.perfetto.dev)
//   synth --prom-out=m.prom      Prometheus text exposition snapshot
//   synth --metrics-snapshot-every=SECONDS
//                                periodic atomic re-export of --metrics-out
//                                and --prom-out while the run is live
//   synth --progress             live improvements on stderr
//   batch                        same --trace-out/--metrics-out/--profile-out/
//                                --prom-out/--metrics-snapshot-every surface
//   report --profile= --trace= --metrics=
//                                human-readable run report from any subset
//                                of the exported artifacts
//   stats/cec --json             machine-readable records on stdout
//
// Parallelism (see docs/PARALLELISM.md):
//   synth --threads=N            λ-parallel offspring evaluation (0 = all
//                                hardware threads, the default). Results
//                                are bit-identical for every thread count.
//   synth --optimizer=NAME       evolve | multistart | anneal | window
//   synth --restarts=N           independent restarts for --optimizer=multistart
//
// Island model (see docs/ISLANDS.md):
//   synth --islands=N            N decorrelated (1+λ) lineages exchanging
//                                elites; bit-identical for any placement
//   synth --topology=NAME        none | ring | star | full
//   synth --migration-interval=E elite exchange every E generations
//   synth --migration-size=K     donors considered per exchange
//   synth --island-state=DIR     per-island checkpoints + fleet manifest
//                                (with --resume: continue a killed fleet)
//   synth --island-endpoints=A,B farm slices out to `rcgp serve` daemons
//                                (Unix socket paths or TCP host:port)
//   serve --listen=HOST:PORT     TCP transport instead of the Unix socket
//   serve --checkpoint-dir=DIR   per-job evolve checkpoints (island workers)
//   client --connect=ADDR        socket path or host:port
//   batch --island-endpoints=A,B island workers for multi-island jobs
//
// Robustness (see docs/ROBUSTNESS.md):
//   synth --checkpoint=c.ckpt    crash-safe periodic state snapshots
//   synth --checkpoint-interval=N  generations between snapshots
//   synth --resume               continue from --checkpoint bit-identically
//   synth --deadline=SECONDS     wall-clock budget (clean best-so-far exit)
//   synth --paranoia=LEVEL       off | boundaries | all invariant checking
//   SIGINT/SIGTERM stop the run cooperatively: the checkpoint is flushed
//   and the best-so-far netlist written. Exit codes: 0 ok, 1 error or not
//   equivalent, 2 usage, 3 interrupted by signal, 4 integrity violation.
//
// Result cache (see docs/SERVICE.md):
//   synth --cache=FILE           consult/fill the persistent result store
//   synth --cache-policy=MODE    use (serve hits, write back) | seed (start
//                                evolution from a hit) | off
//   batch --cache=FILE           same store shared across the worker pool
//   serve --socket= --cache=     daemon; every verified result persists
//   cache warm --store=FILE      exact-synthesize all <=4-input NPN classes

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "aqfp/aqfp.hpp"
#include "batch/execute.hpp"
#include "batch/manifest.hpp"
#include "batch/runner.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cache/store.hpp"
#include "cache/warm.hpp"
#include "cec/bdd_cec.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/request.hpp"
#include "exact/exact_rqfp.hpp"
#include "fuzz/harness.hpp"
#include "io/io.hpp"
#include "io/rqfp_writer.hpp"
#include "island/island.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "robust/integrity.hpp"
#include "robust/stop.hpp"
#include "rqfp/cost.hpp"
#include "rqfp/energy.hpp"
#include "rqfp/reversibility.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "version.hpp"

namespace {

using namespace rcgp;

/// Matches `--name=value` (returns true, sets `value`) for option parsing.
bool opt_value(const std::string& arg, const char* name, std::string& value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

/// "a,b,c" → {"a", "b", "c"} (empty pieces dropped).
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string piece =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!piece.empty()) {
      out.push_back(piece);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

/// Shared --profile-out / --prom-out / --metrics-snapshot-every surface of
/// the synth and batch subcommands: span profiling around the run, a
/// Prometheus text snapshot after it, and an optional periodic snapshot
/// writer while it is live.
struct ProfileFlags {
  std::string profile_path;
  std::string prom_path;
  double snapshot_every = 0.0;

  bool parse(const std::string& arg) {
    std::string v;
    if (opt_value(arg, "--profile-out", profile_path) ||
        opt_value(arg, "--prom-out", prom_path)) {
      return true;
    }
    if (opt_value(arg, "--metrics-snapshot-every", v)) {
      snapshot_every = std::stod(v);
      return true;
    }
    return false;
  }

  /// Call before the run: turns the span profiler on and starts the
  /// periodic snapshotter (which re-exports `metrics_path` as a bare
  /// registry document and `prom_path` as Prometheus text).
  void begin(const std::string& metrics_path) {
    if (!profile_path.empty()) {
      obs::set_thread_name("main");
      obs::set_profiling_enabled(true);
    }
    if (snapshot_every > 0.0 &&
        (!metrics_path.empty() || !prom_path.empty())) {
      snapshotter_ = std::make_unique<obs::MetricsSnapshotter>(
          obs::MetricsSnapshotter::Options{metrics_path, prom_path,
                                           snapshot_every});
    }
  }

  /// Call after the run: stops the snapshotter (one final snapshot — the
  /// caller's own final metrics write may then overwrite it with a richer
  /// document) and writes the profile and Prometheus outputs. Returns
  /// false on an I/O failure, with the message already printed.
  bool finish(const char* cmd) {
    snapshotter_.reset();
    if (!profile_path.empty()) {
      obs::set_profiling_enabled(false);
      if (!obs::write_chrome_trace(profile_path)) {
        std::fprintf(stderr, "%s: cannot write %s\n", cmd,
                     profile_path.c_str());
        return false;
      }
      std::printf("wrote %s (%zu spans)\n", profile_path.c_str(),
                  obs::profile_spans().size());
    }
    if (!prom_path.empty()) {
      if (!obs::registry().write_prometheus(prom_path)) {
        std::fprintf(stderr, "%s: cannot write %s\n", cmd,
                     prom_path.c_str());
        return false;
      }
      std::printf("wrote %s\n", prom_path.c_str());
    }
    return true;
  }

private:
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter_;
};

/// Writes the synth metrics document: flow timing breakdown + the full
/// metrics registry snapshot.
bool write_synth_metrics(const std::string& path,
                         const core::FlowResult& result) {
  obs::json::Writer w;
  w.begin_object();
  w.key("flow").begin_object();
  w.field("seconds_total", result.seconds_total);
  w.key("phases").begin_object();
  for (const auto& r : result.phases) {
    if (r.depth == 0) {
      w.field(r.path, r.seconds);
    }
  }
  w.end_object();
  w.key("nested_phases").begin_object();
  for (const auto& r : result.phases) {
    if (r.depth > 0) {
      w.field(r.path, r.seconds);
    }
  }
  w.end_object();
  w.key("evolution").begin_object();
  w.field("generations_run", result.evolution.generations_run);
  w.field("evaluations", result.evolution.evaluations);
  w.field("improvements", result.evolution.improvements);
  w.field("sat_confirmations", result.evolution.sat_confirmations);
  w.field("sat_cec_conflicts", result.evolution.sat_cec_conflicts);
  w.end_object();
  w.end_object();
  w.key("metrics");
  // The registry snapshot is itself a complete JSON object; splice it in.
  const std::string registry_json = obs::registry().to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return false;
  }
  const std::string head = w.str();
  std::fwrite(head.data(), 1, head.size(), f);
  std::fwrite(registry_json.data(), 1, registry_json.size(), f);
  std::fputs("}\n", f);
  std::fclose(f);
  return true;
}

/// Loads an input as truth tables: a recognized circuit-file extension
/// goes through the io facade, anything else is a built-in benchmark name.
std::vector<tt::TruthTable> load_spec(const std::string& input) {
  if (io::format_from_extension(input) != io::Format::kAuto) {
    return io::read_network(input).to_tables();
  }
  return benchmarks::get(input).spec; // throws with a clear message
}

int cmd_list() {
  std::printf("Table 1 (small):");
  for (const auto& n : benchmarks::table1_names()) {
    std::printf(" %s", n.c_str());
  }
  std::printf("\nTable 2 (large):");
  for (const auto& n : benchmarks::table2_names()) {
    std::printf(" %s", n.c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: rcgp synth <input> [-g N] [-s seed] [-o out.rqfp] "
                 "[--dot out.dot] [--no-cgp] [--polish] [--pack]\n"
                 "                 [--threads=N] "
                 "[--optimizer=evolve|multistart|anneal|window] "
                 "[--restarts=N]\n"
                 "                 [--islands=N] "
                 "[--topology=none|ring|star|full] [--migration-interval=E] "
                 "[--migration-size=K]\n"
                 "                 [--island-state=DIR] "
                 "[--island-endpoints=ADDR,ADDR,...]\n"
                 "                 [--trace-out=t.jsonl] "
                 "[--metrics-out=m.json] [--heartbeat=N] [--progress]\n"
                 "                 [--profile-out=p.json] [--prom-out=m.prom] "
                 "[--metrics-snapshot-every=SECONDS]\n"
                 "                 [--checkpoint=c.ckpt] "
                 "[--checkpoint-interval=N] [--resume] [--deadline=SECONDS]\n"
                 "                 [--paranoia=off|boundaries|all] "
                 "[--cache=store.rcc] [--cache-policy=use|seed|off]\n");
    return 2;
  }
  const std::string input = args[0];
  core::FlowOptions opt;
  opt.evolve.generations = 50000;
  std::string out_path;
  std::string dot_path;
  std::string trace_path;
  std::string metrics_path;
  std::string cache_path;
  core::CachePolicy cache_policy = core::CachePolicy::kUse;
  std::vector<std::string> island_endpoints;
  ProfileFlags prof;
  bool progress = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (args[i] == "-g" && i + 1 < args.size()) {
      opt.evolve.generations = std::stoull(args[++i]);
    } else if (args[i] == "-s" && i + 1 < args.size()) {
      opt.evolve.seed = std::stoull(args[++i]);
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--dot" && i + 1 < args.size()) {
      dot_path = args[++i];
    } else if (args[i] == "--no-cgp") {
      opt.run_cgp = false;
    } else if (args[i] == "--polish") {
      opt.run_exact_polish = true;
    } else if (args[i] == "--pack") {
      opt.pack_shared_fanins = true;
    } else if (opt_value(args[i], "--trace-out", trace_path) ||
               opt_value(args[i], "--metrics-out", metrics_path)) {
      // value captured
    } else if (args[i] == "--trace-out" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--metrics-out" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (opt_value(args[i], "--heartbeat", v)) {
      opt.evolve.trace_heartbeat = std::stoull(v);
    } else if (args[i] == "--progress") {
      progress = true;
    } else if (opt_value(args[i], "--threads", v)) {
      opt.evolve.threads = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--optimizer", v)) {
      opt.optimizer = core::parse_algorithm(v);
    } else if (opt_value(args[i], "--restarts", v)) {
      opt.restarts = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--islands", v)) {
      opt.island.islands = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--topology", v)) {
      opt.island.topology = core::parse_topology(v);
    } else if (opt_value(args[i], "--migration-interval", v)) {
      opt.island.migration_interval = std::stoull(v);
    } else if (opt_value(args[i], "--migration-size", v)) {
      opt.island.migration_size = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--island-state", v)) {
      opt.island.state_dir = v;
    } else if (opt_value(args[i], "--island-endpoints", v)) {
      island_endpoints = split_csv(v);
    } else if (opt_value(args[i], "--checkpoint", v)) {
      opt.limits.checkpoint_path = v;
    } else if (opt_value(args[i], "--checkpoint-interval", v)) {
      opt.limits.checkpoint_interval = std::stoull(v);
    } else if (args[i] == "--resume") {
      opt.resume = true;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.limits.deadline_seconds = std::stod(v);
    } else if (opt_value(args[i], "--paranoia", v)) {
      opt.evolve.paranoia = robust::parse_paranoia(v);
    } else if (opt_value(args[i], "--cache", cache_path)) {
      // value captured
    } else if (opt_value(args[i], "--cache-policy", v)) {
      cache_policy = core::parse_cache_policy(v);
    } else {
      std::fprintf(stderr, "synth: unknown option %s\n", args[i].c_str());
      return 2;
    }
  }
  if (opt.resume && opt.limits.checkpoint_path.empty() &&
      opt.island.state_dir.empty()) {
    std::fprintf(stderr, "synth: --resume requires --checkpoint=PATH "
                         "(or --island-state=DIR for island fleets)\n");
    return 2;
  }
  if (!island_endpoints.empty() && opt.island.state_dir.empty()) {
    std::fprintf(stderr, "synth: --island-endpoints requires "
                         "--island-state=DIR on a filesystem the daemons "
                         "share (their --checkpoint-dir)\n");
    return 2;
  }
  std::optional<island::RemoteSliceExecutor> remote;
  if (!island_endpoints.empty()) {
    remote.emplace(island_endpoints);
    opt.island.executor = &*remote;
  }
  // First SIGINT/SIGTERM requests a cooperative stop (best-so-far is
  // written and the checkpoint flushed); a second one force-kills.
  static robust::StopToken signal_token;
  opt.limits.stop = &robust::install_signal_stop(signal_token);

  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "synth: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace->attach_to_log();
    opt.evolve.trace = trace.get();
  }
  if (progress) {
    opt.evolve.on_improvement = [](std::uint64_t gen,
                                   const core::Fitness& fit) {
      std::fprintf(stderr, "  gen %llu: %s\n",
                   static_cast<unsigned long long>(gen),
                   fit.to_string().c_str());
    };
  }

  const auto spec = load_spec(input);

  // Result cache: a `use` hit skips synthesis entirely (the netlist was
  // re-verified by simulation inside lookup); a `seed` hit starts the CGP
  // phase from the de-canonicalized stored netlist instead.
  std::optional<cache::Store> store;
  std::optional<cache::Hit> hit;
  if (!cache_path.empty() && cache_policy != core::CachePolicy::kOff) {
    store.emplace(cache_path);
    hit = store->lookup(spec);
  }
  if (hit && cache_policy == core::CachePolicy::kUse) {
    std::printf("cache: hit %s (origin %s)\n", hit->key.c_str(),
                hit->origin.c_str());
    std::printf("rcgp: %s (cached)\n", hit->cost.to_string().c_str());
    if (!out_path.empty()) {
      const io::Format f = io::format_from_extension(out_path);
      io::write_network(hit->netlist, out_path,
                        f == io::Format::kAuto ? io::Format::kRqfp : f);
      std::printf("wrote %s\n", out_path.c_str());
    }
    if (!dot_path.empty()) {
      io::write_network(hit->netlist, dot_path, io::Format::kDot);
      std::printf("wrote %s\n", dot_path.c_str());
    }
    return 0;
  }
  if (hit) {
    opt.cgp_seed = &hit->netlist; // --cache-policy=seed
  } else if (store) {
    std::printf("cache: miss\n");
  }

  prof.begin(metrics_path);
  const auto r = core::synthesize(spec, opt);
  const bool prof_ok = prof.finish("synth");
  std::printf("init: %s\n", r.initial_cost.to_string().c_str());
  std::printf("rcgp: %s (%.2fs)\n", r.optimized_cost.to_string().c_str(),
              r.seconds_total);
  const auto check = cec::sim_check(r.optimized, spec);
  std::printf("equivalent: %s\n", check.all_match ? "yes" : "NO");
  const bool interrupted = signal_token.stop_requested();
  if (interrupted) {
    std::fprintf(stderr, "synth: interrupted by signal — best-so-far kept%s\n",
                 opt.limits.checkpoint_path.empty()
                     ? ""
                     : ", checkpoint flushed");
  }
  if (store && check.all_match && !interrupted) {
    if (store->insert(spec, r.optimized, "cgp")) {
      store->save();
      std::printf("cache: stored %s\n", store->path().c_str());
    }
  }
  if (!metrics_path.empty()) {
    if (!write_synth_metrics(metrics_path, r)) {
      std::fprintf(stderr, "synth: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (trace) {
    std::printf("wrote %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(trace->lines_written()));
  }
  if (!out_path.empty()) {
    // Format follows the extension (.rqfp / .v / .dot); an unrecognized
    // extension keeps the historical default of .rqfp interchange.
    const io::Format f = io::format_from_extension(out_path);
    io::write_network(r.optimized, out_path,
                      f == io::Format::kAuto ? io::Format::kRqfp : f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!dot_path.empty()) {
    io::write_network(r.optimized, dot_path, io::Format::kDot);
    std::printf("wrote %s\n", dot_path.c_str());
  }
  if (!check.all_match || !prof_ok) {
    return 1;
  }
  return interrupted ? 3 : 0;
}

int cmd_batch(const std::vector<std::string>& args) {
  std::string manifest_path;
  std::string metrics_path;
  std::string trace_path;
  std::string cache_path;
  ProfileFlags prof;
  batch::BatchOptions opt;
  bool usage_error = args.empty();
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (opt_value(args[i], "--trace-out", trace_path)) {
      // value captured
    } else if (opt_value(args[i], "--manifest", v)) {
      manifest_path = v;
    } else if (opt_value(args[i], "--jobs", v)) {
      opt.workers = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--out-dir", v)) {
      opt.out_dir = v;
    } else if (args[i] == "--resume") {
      opt.resume = true;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.budget.deadline_seconds = std::stod(v);
    } else if (opt_value(args[i], "--retries", v)) {
      opt.default_retries = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--checkpoint-interval", v)) {
      opt.checkpoint_interval = std::stoull(v);
    } else if (opt_value(args[i], "--generations", v)) {
      opt.default_generations = std::stoull(v);
    } else if (opt_value(args[i], "--threads-per-job", v)) {
      opt.threads_per_job = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--island-endpoints", v)) {
      opt.island_endpoints = split_csv(v);
    } else if (opt_value(args[i], "--metrics-out", v)) {
      metrics_path = v;
    } else if (opt_value(args[i], "--cache", cache_path)) {
      // value captured
    } else if (i == 0 && args[i][0] != '-') {
      manifest_path = args[i]; // positional manifest
    } else {
      std::fprintf(stderr, "batch: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (manifest_path.empty()) {
    usage_error = true;
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp batch <manifest.jsonl> [--manifest=FILE] "
                 "[--jobs=N] [--out-dir=DIR] [--resume]\n"
                 "                  [--deadline=SECONDS] [--retries=N] "
                 "[--checkpoint-interval=N]\n"
                 "                  [--generations=N] [--threads-per-job=N] "
                 "[--cache=store.rcc]\n"
                 "                  [--island-endpoints=ADDR,ADDR,...]\n"
                 "                  [--metrics-out=m.json] "
                 "[--trace-out=t.jsonl]\n"
                 "                  [--profile-out=p.json] [--prom-out=m.prom] "
                 "[--metrics-snapshot-every=SECONDS]\n");
    return 2;
  }
  // First SIGINT/SIGTERM interrupts the batch cooperatively (running jobs
  // checkpoint and are re-run by --resume); a second one force-kills.
  static robust::StopToken signal_token;
  opt.budget.stop = &robust::install_signal_stop(signal_token);

  // One shared store across the worker pool; the runner saves it once
  // after the batch so concurrent jobs never race on the file.
  std::optional<cache::Store> store;
  if (!cache_path.empty()) {
    store.emplace(cache_path);
    opt.cache = &*store;
    std::printf("cache: %s (%zu entries)\n", cache_path.c_str(),
                store->size());
  }

  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "batch: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace->attach_to_log();
    opt.trace = trace.get();
  }

  const auto manifest = batch::parse_manifest_file(manifest_path);
  const unsigned total = static_cast<unsigned>(manifest.jobs.size());
  opt.on_record = [total](const batch::JobRecord& rec) {
    std::printf("%s: %s%s%s (gates=%u garbage=%u jjs=%llu, %.2fs, "
                "worker %u)\n",
                rec.id.c_str(),
                rec.ok          ? "ok"
                : rec.final_record ? "FAILED"
                                   : "interrupted",
                rec.cached   ? " [cached]"
                : rec.seeded ? " [seeded]"
                             : "",
                rec.error.empty() ? "" : (" — " + rec.error).c_str(),
                rec.n_r, rec.n_g, static_cast<unsigned long long>(rec.jjs),
                rec.seconds, rec.worker);
    std::fflush(stdout);
  };
  prof.begin(metrics_path);
  const auto summary = batch::run_batch(manifest, opt);
  if (trace) {
    trace->event("batch_end")
        .field("total", summary.total)
        .field("done", summary.done)
        .field("failed", summary.failed)
        .field("skipped", summary.skipped)
        .field("unrun", summary.unrun)
        .field("seconds", summary.seconds)
        .field("stop_reason", robust::to_string(summary.stop_reason));
  }
  const bool prof_ok = prof.finish("batch");

  std::printf("batch: %u jobs — %u done, %u failed, %u skipped, %u unrun "
              "(%.2fs)\n",
              summary.total, summary.done, summary.failed, summary.skipped,
              summary.unrun, summary.seconds);
  std::printf("results: %s\n", summary.results_path.c_str());
  if (store) {
    std::printf("cache: %llu hits, %llu misses — %zu entries in %s\n",
                static_cast<unsigned long long>(
                    obs::registry().counter("cache.hits").value()),
                static_cast<unsigned long long>(
                    obs::registry().counter("cache.misses").value()),
                store->size(), store->path().c_str());
  }
  if (summary.stop_reason != robust::StopReason::kCompleted) {
    std::fprintf(stderr, "batch: stopped early (%s) — rerun with --resume "
                         "to finish the remaining jobs\n",
                 robust::to_string(summary.stop_reason).c_str());
  }
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "batch: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (trace) {
    std::printf("wrote %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(trace->lines_written()));
  }
  if (summary.stop_reason != robust::StopReason::kCompleted) {
    return 3;
  }
  return summary.failed == 0 && prof_ok ? 0 : 1;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  fuzz::FuzzOptions opt;
  std::string metrics_path;
  ProfileFlags prof;
  bool usage_error = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string v;
    if (prof.parse(args[i])) {
      // value captured
    } else if (opt_value(args[i], "--targets", v)) {
      opt.targets.clear();
      std::size_t start = 0;
      while (start <= v.size()) {
        const std::size_t comma = v.find(',', start);
        const std::string name =
            v.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (!name.empty()) {
          opt.targets.push_back(fuzz::parse_target(name));
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (opt_value(args[i], "--seed", v)) {
      opt.seed = std::stoull(v);
    } else if (opt_value(args[i], "--cases", v)) {
      opt.cases = std::stoull(v);
    } else if (opt_value(args[i], "--case", v)) {
      opt.only_case = std::stoull(v);
    } else if (opt_value(args[i], "--out-dir", v)) {
      opt.out_dir = v;
    } else if (opt_value(args[i], "--log", v)) {
      opt.log_path = v;
    } else if (opt_value(args[i], "--deadline", v)) {
      opt.budget.deadline_seconds = std::stod(v);
    } else if (args[i] == "--no-shrink") {
      opt.shrink = false;
    } else if (opt_value(args[i], "--metrics-out", v)) {
      metrics_path = v;
    } else {
      std::fprintf(stderr, "fuzz: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp fuzz [--targets=T1,T2,...] [--seed=S] "
                 "[--cases=N] [--case=K]\n"
                 "                 [--out-dir=DIR] [--log=findings.jsonl] "
                 "[--deadline=SECONDS] [--no-shrink]\n"
                 "                 [--metrics-out=m.json] "
                 "[--profile-out=p.json] [--prom-out=m.prom]\n"
                 "  targets: io-roundtrip parser-corruption "
                 "manifest-corruption optimizer-differential\n"
                 "           cec-cross simd-differential selftest "
                 "(default: all but selftest)\n"
                 "  Every case is reproducible from (--seed, --case) alone; "
                 "findings print their exact\n"
                 "  repro command and ship a minimized reproducer under "
                 "--out-dir (docs/FUZZING.md).\n");
    return 2;
  }
  static robust::StopToken signal_token;
  opt.budget.stop = &robust::install_signal_stop(signal_token);

  opt.on_finding = [](const fuzz::Finding& f) {
    std::printf("FINDING %s case %llu [%s]: %s\n  reproducer: %s\n"
                "  repro: %s\n",
                f.target.c_str(),
                static_cast<unsigned long long>(f.case_index), f.kind.c_str(),
                f.detail.c_str(),
                f.reproducer_path.empty() ? "(none)"
                                          : f.reproducer_path.c_str(),
                f.repro_command.c_str());
    std::fflush(stdout);
  };

  prof.begin(metrics_path);
  const fuzz::FuzzSummary summary = fuzz::run_fuzz(opt);
  const bool prof_ok = prof.finish("fuzz");

  std::printf("fuzz: %llu cases, %llu findings (%.2fs, %s)\n",
              static_cast<unsigned long long>(summary.cases_run),
              static_cast<unsigned long long>(summary.findings),
              summary.seconds,
              robust::to_string(summary.stop_reason).c_str());
  std::printf("findings log: %s\n", summary.log_path.c_str());
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "fuzz: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (summary.stop_reason == robust::StopReason::kStopRequested) {
    return 3;
  }
  return (summary.findings == 0 && prof_ok) ? 0 : 1;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServeOptions opt;
  std::string cache_path;
  std::string trace_path;
  std::string metrics_path;
  bool usage_error = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string v;
    if (opt_value(args[i], "--socket", opt.socket_path) ||
        opt_value(args[i], "--listen", opt.listen) ||
        opt_value(args[i], "--checkpoint-dir", opt.checkpoint_dir) ||
        opt_value(args[i], "--cache", cache_path) ||
        opt_value(args[i], "--metrics-out", metrics_path) ||
        opt_value(args[i], "--trace-out", trace_path)) {
      // value captured
    } else if (opt_value(args[i], "--workers", v)) {
      opt.workers = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--generations", v)) {
      opt.execute.default_generations = std::stoull(v);
    } else if (opt_value(args[i], "--threads-per-job", v)) {
      opt.execute.threads_per_job = static_cast<unsigned>(std::stoul(v));
    } else {
      std::fprintf(stderr, "serve: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp serve [--socket=rcgp.sock] "
                 "[--listen=HOST:PORT] [--cache=store.rcc] [--workers=N]\n"
                 "                  [--checkpoint-dir=DIR] [--generations=N] "
                 "[--threads-per-job=N]\n"
                 "                  [--trace-out=t.jsonl] "
                 "[--metrics-out=m.json]\n"
                 "  NDJSON over a Unix socket (or TCP with --listen; port 0 "
                 "binds an ephemeral\n"
                 "  port and prints it): one SynthesisRequest line in, one "
                 "SynthesisResponse line\n"
                 "  out per connection (docs/SERVICE.md). --checkpoint-dir "
                 "gives every evolve job\n"
                 "  a resumable <dir>/<id>.ckpt — the island-worker contract "
                 "(docs/ISLANDS.md).\n"
                 "  SIGINT/SIGTERM shut down cleanly.\n");
    return 2;
  }
  // First SIGINT/SIGTERM drains connections and persists the cache; a
  // second one force-kills (the store survives — saves are atomic).
  static robust::StopToken signal_token;
  opt.stop = &robust::install_signal_stop(signal_token);

  std::optional<cache::Store> store;
  if (!cache_path.empty()) {
    store.emplace(cache_path);
    opt.execute.cache = &*store;
    // Persist after every insert so a SIGKILL loses at most the job that
    // was in flight.
    opt.execute.save_cache_on_insert = true;
  }

  std::unique_ptr<obs::TraceSink> trace;
  if (!trace_path.empty()) {
    trace = obs::TraceSink::open(trace_path);
    if (!trace) {
      std::fprintf(stderr, "serve: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace->attach_to_log();
    opt.trace = trace.get();
  }

  serve::Server server(opt);
  server.start();
  // bound_address() resolves an ephemeral --listen port to the real one.
  std::printf("serve: listening on %s", server.bound_address().c_str());
  if (opt.workers == 0) {
    std::printf(" (hardware-concurrency worker slots)");
  } else {
    std::printf(" (%u worker slot%s)", opt.workers,
                opt.workers == 1 ? "" : "s");
  }
  if (store) {
    std::printf(", cache %s (%zu entries)", store->path().c_str(),
                store->size());
  }
  std::printf("\n");
  std::fflush(stdout);
  server.run(); // blocks until SIGINT/SIGTERM
  if (store) {
    store->save();
  }
  if (!metrics_path.empty()) {
    if (!obs::registry().write_json(metrics_path)) {
      std::fprintf(stderr, "serve: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::printf("serve: shut down — %llu requests, %llu ok, %llu errors\n",
              static_cast<unsigned long long>(
                  obs::registry().counter("serve.requests").value()),
              static_cast<unsigned long long>(
                  obs::registry().counter("serve.responses.ok").value()),
              static_cast<unsigned long long>(
                  obs::registry().counter("serve.errors").value()));
  return 0;
}

int cmd_client(const std::vector<std::string>& args) {
  std::string address = "rcgp.sock";
  std::string input_path;
  bool usage_error = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (opt_value(args[i], "--socket", address) ||
        opt_value(args[i], "--connect", address)) {
      // value captured (--connect accepts host:port or a socket path)
    } else if (args[i][0] != '-' && input_path.empty()) {
      input_path = args[i];
    } else {
      std::fprintf(stderr, "client: unknown option %s\n", args[i].c_str());
      usage_error = true;
    }
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: rcgp client [requests.jsonl] [--socket=rcgp.sock] "
                 "[--connect=HOST:PORT]\n"
                 "  Submits each request line (from the file, or stdin) to a "
                 "running daemon and\n"
                 "  prints one response line per request on stdout. --connect "
                 "takes a TCP\n"
                 "  endpoint or a Unix socket path interchangeably.\n");
    return 2;
  }
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!input_path.empty()) {
    file.open(input_path);
    if (!file) {
      std::fprintf(stderr, "client: cannot read %s\n", input_path.c_str());
      return 1;
    }
    in = &file;
  }
  serve::Client client(address);
  std::string line;
  std::uint64_t sent = 0;
  std::uint64_t failed = 0;
  while (std::getline(*in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    const core::SynthesisResponse resp = client.submit_line(line);
    ++sent;
    if (!resp.ok) {
      ++failed;
    }
    std::printf("%s\n", core::to_json(resp).c_str());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "client: %llu requests, %llu failed\n",
               static_cast<unsigned long long>(sent),
               static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}

int cmd_cache(const std::vector<std::string>& args) {
  const char* usage =
      "usage: rcgp cache warm   --store=FILE [--max-vars=N] [--max-gates=N]\n"
      "                         [--time-limit=SECONDS] [--save-every=N] "
      "[--refresh]\n"
      "       rcgp cache stats  --store=FILE [--json]\n"
      "       rcgp cache verify --store=FILE\n"
      "  warm fills the store with exact-synthesis results for every\n"
      "  single-output NPN class of <= max-vars inputs (docs/SERVICE.md).\n";
  if (args.empty()) {
    std::fputs(usage, stderr);
    return 2;
  }
  const std::string sub = args[0];
  std::string store_path;
  cache::WarmOptions wopt;
  bool json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string v;
    if (opt_value(args[i], "--store", store_path)) {
      // value captured
    } else if (opt_value(args[i], "--max-vars", v)) {
      wopt.max_vars = static_cast<unsigned>(std::stoul(v));
    } else if (opt_value(args[i], "--max-gates", v)) {
      wopt.exact.max_gates = static_cast<std::uint32_t>(std::stoul(v));
    } else if (opt_value(args[i], "--time-limit", v)) {
      wopt.exact.time_limit_seconds = std::stod(v);
    } else if (opt_value(args[i], "--save-every", v)) {
      wopt.save_every = std::stoull(v);
    } else if (args[i] == "--refresh") {
      wopt.skip_existing = false; // re-derive classes that already exist
    } else if (args[i] == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "cache: unknown option %s\n", args[i].c_str());
      return 2;
    }
  }
  if (store_path.empty()) {
    std::fputs(usage, stderr);
    return 2;
  }
  cache::Store store(store_path);

  if (sub == "warm") {
    wopt.progress = [](std::uint64_t done, std::uint64_t total) {
      std::fprintf(stderr, "\rwarm: %llu/%llu classes",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total));
      if (done == total) {
        std::fputc('\n', stderr);
      }
    };
    const cache::WarmResult r = cache::warm(store, wopt);
    std::printf("warm: %llu classes — %llu solved, %llu already present, "
                "%llu over budget (%.2fs)\n",
                static_cast<unsigned long long>(r.classes),
                static_cast<unsigned long long>(r.solved),
                static_cast<unsigned long long>(r.skipped),
                static_cast<unsigned long long>(r.timeouts), r.seconds);
    std::printf("store: %zu entries in %s\n", store.size(),
                store.path().c_str());
    if (r.timeouts > 0) {
      std::fprintf(stderr, "warm: rerun with a larger --time-limit/"
                           "--max-gates to fill the remaining classes\n");
    }
    return 0;
  }

  if (sub == "stats") {
    const auto entries = store.entries();
    std::map<std::string, std::uint64_t> by_shape;
    std::map<std::string, std::uint64_t> by_origin;
    for (const auto& [key, e] : entries) {
      const unsigned nv = e.tables.empty() ? 0 : e.tables[0].num_vars();
      by_shape[std::to_string(nv) + "x" + std::to_string(e.tables.size())]++;
      by_origin[e.origin]++;
    }
    if (json) {
      obs::json::Writer w;
      w.begin_object();
      w.field("path", store.path());
      w.field("entries", static_cast<std::uint64_t>(entries.size()));
      w.key("by_shape").begin_object();
      for (const auto& [k, n] : by_shape) {
        w.field(k, n);
      }
      w.end_object();
      w.key("by_origin").begin_object();
      for (const auto& [k, n] : by_origin) {
        w.field(k, n);
      }
      w.end_object();
      w.end_object();
      std::printf("%s\n", w.str().c_str());
      return 0;
    }
    std::printf("store: %zu entries in %s\n", entries.size(),
                store.path().c_str());
    for (const auto& [k, n] : by_shape) {
      std::printf("  %s (vars x outputs): %llu\n", k.c_str(),
                  static_cast<unsigned long long>(n));
    }
    for (const auto& [k, n] : by_origin) {
      std::printf("  origin %s: %llu\n", k.c_str(),
                  static_cast<unsigned long long>(n));
    }
    return 0;
  }

  if (sub == "verify") {
    const auto problems = store.verify();
    if (problems.empty()) {
      std::printf("cache: %zu entries verified ok\n", store.size());
      return 0;
    }
    for (const auto& p : problems) {
      std::fprintf(stderr, "cache: %s\n", p.c_str());
    }
    std::fprintf(stderr, "cache: %zu problem%s in %s\n", problems.size(),
                 problems.size() == 1 ? "" : "s", store.path().c_str());
    return 4;
  }

  std::fprintf(stderr, "cache: unknown subcommand %s\n", sub.c_str());
  std::fputs(usage, stderr);
  return 2;
}

int cmd_exact(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: rcgp exact <input> [-m max_gates] [-t seconds]\n");
    return 2;
  }
  exact::ExactParams params;
  params.max_gates = 5;
  params.time_limit_seconds = 60;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-m" && i + 1 < args.size()) {
      params.max_gates = static_cast<std::uint32_t>(std::stoul(args[++i]));
    } else if (args[i] == "-t" && i + 1 < args.size()) {
      params.time_limit_seconds = std::stod(args[++i]);
    } else {
      std::fprintf(stderr, "exact: unknown option %s\n", args[i].c_str());
      return 2;
    }
  }
  const auto spec = load_spec(args[0]);
  const auto r = exact::exact_synthesize(spec, params);
  switch (r.status) {
    case exact::ExactStatus::kSolved:
      std::printf("optimal: %u gates, %u garbage (%.2fs, %llu SAT calls)\n",
                  r.gates, r.garbage, r.seconds,
                  static_cast<unsigned long long>(r.sat_calls));
      std::printf("%s", io::write_rqfp_string(*r.netlist).c_str());
      return 0;
    case exact::ExactStatus::kUnsat:
      std::printf("no realization within %u gates\n", params.max_gates);
      return 1;
    case exact::ExactStatus::kTimeout:
      std::printf("timeout after %.2fs\n", r.seconds);
      return 1;
  }
  return 1;
}

int cmd_cec(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  bool json = false;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "usage: rcgp cec <a.rqfp> <b.rqfp> [--json]\n");
    return 2;
  }
  const auto a = *io::read_network(files[0], io::Format::kRqfp).rqfp;
  const auto b = *io::read_network(files[1], io::Format::kRqfp).rqfp;
  const auto sat = cec::sat_check(a, b);
  const auto bdd = cec::bdd_check(a, b);
  const bool equal = sat.verdict == cec::CecVerdict::kEquivalent;
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("a", files[0]);
    w.field("b", files[1]);
    w.field("equivalent", equal);
    w.field("sat_verdict",
            sat.verdict == cec::CecVerdict::kEquivalent      ? "equivalent"
            : sat.verdict == cec::CecVerdict::kNotEquivalent ? "not_equivalent"
                                                             : "undecided");
    w.field("bdd_equivalent", bdd.equivalent);
    w.field("sat_conflicts", sat.conflicts);
    w.key("counterexample");
    if (sat.counterexample) {
      w.value(static_cast<std::uint64_t>(*sat.counterexample));
    } else {
      w.null();
    }
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return equal ? 0 : 1;
  }
  std::printf("SAT: %s, BDD: %s\n",
              equal ? "equivalent" : "NOT equivalent",
              bdd.equivalent ? "equivalent" : "NOT equivalent");
  if (!equal && sat.counterexample) {
    std::printf("counterexample: input %llu\n",
                static_cast<unsigned long long>(*sat.counterexample));
  }
  return equal ? 0 : 1;
}

int cmd_report(const std::vector<std::string>& args) {
  // Run-report mode: ingest any subset of a run's exported artifacts.
  obs::RunReportInputs run_inputs;
  bool run_mode = false;
  std::vector<std::string> positional;
  for (const auto& a : args) {
    if (opt_value(a, "--profile", run_inputs.profile_path) ||
        opt_value(a, "--trace", run_inputs.trace_path) ||
        opt_value(a, "--metrics", run_inputs.metrics_path)) {
      run_mode = true;
    } else {
      positional.push_back(a);
    }
  }
  if (run_mode) {
    if (!positional.empty()) {
      std::fprintf(stderr, "report: run-report mode takes no netlist\n");
      return 2;
    }
    std::fputs(obs::run_report(run_inputs).c_str(), stdout);
    return 0;
  }
  if (positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: rcgp report <x.rqfp|benchmark>\n"
                 "       rcgp report [--profile=p.json] [--trace=t.jsonl] "
                 "[--metrics=m.json]\n");
    return 2;
  }
  rqfp::Netlist net;
  const std::string& input = positional[0];
  if (io::format_from_extension(input) == io::Format::kRqfp) {
    net = *io::read_network(input, io::Format::kRqfp).rqfp;
  } else {
    // Synthesize the benchmark's initialization baseline for reporting.
    core::FlowOptions opt;
    opt.run_cgp = false;
    net = core::synthesize(load_spec(input), opt).initial;
  }
  const auto cost = rqfp::cost_of(net);
  std::printf("%s\n", cost.to_string().c_str());
  const auto cells = aqfp::expand(net);
  std::printf("AQFP cells: %u splitters, %u majorities, %u buffers "
              "(%u JJs, %u half-phases, %s)\n",
              cells.count(aqfp::CellKind::kSplitter),
              cells.count(aqfp::CellKind::kMajority),
              cells.count(aqfp::CellKind::kBuffer), cells.total_jjs(),
              cells.max_phase(),
              cells.validate().empty() ? "valid" : "INVALID");
  const auto rev = rqfp::analyze_reversibility(net);
  std::printf("reversibility: %s (%.3f bits erased, %u boundary outputs)\n",
              rev.information_preserving ? "information preserving"
                                         : "lossy",
              rev.erased_bits, rev.boundary_outputs);
  const auto energy = rqfp::estimate_energy(net);
  std::printf("energy @%.1fK: Landauer floor %.3e J, switching %.3e J\n",
              energy.temperature_kelvin, energy.landauer_floor,
              energy.switching_estimate);
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  bool json = false;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 1) {
    std::fprintf(stderr, "usage: rcgp stats <x.rqfp> [--json]\n");
    return 2;
  }
  const auto net = *io::read_network(files[0], io::Format::kRqfp).rqfp;
  const auto problem = net.validate();
  const auto cost = rqfp::cost_of(net);
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("file", files[0]);
    w.field("pis", net.num_pis());
    w.field("pos", net.num_pos());
    w.field("gates", net.num_gates());
    w.key("cost").begin_object();
    w.field("n_r", cost.n_r);
    w.field("n_b", cost.n_b);
    w.field("jjs", cost.jjs);
    w.field("n_d", cost.n_d);
    w.field("n_g", cost.n_g);
    w.end_object();
    w.field("legal", problem.empty());
    if (!problem.empty()) {
      w.field("problem", problem);
    }
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("pis=%u pos=%u gates=%u\n", net.num_pis(), net.num_pos(),
              net.num_gates());
  std::printf("%s\n", cost.to_string().c_str());
  std::printf("legal: %s%s\n", problem.empty() ? "yes" : "NO — ",
              problem.c_str());
  return 0;
}

int cmd_version(const std::vector<std::string>& args) {
  const bool json = !args.empty() && args[0] == "--json";
  if (json) {
    obs::json::Writer w;
    w.begin_object();
    w.field("name", "rcgp");
    w.field("version", kVersionString);
    w.field("major", kVersionMajor);
    w.field("minor", kVersionMinor);
    w.field("patch", kVersionPatch);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("rcgp %s\n", kVersionString);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rcgp <synth|batch|serve|client|cache|fuzz|exact|cec|"
                 "stats|report|list|version> [args...]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "list") {
      return cmd_list();
    }
    if (cmd == "synth") {
      return cmd_synth(args);
    }
    if (cmd == "batch") {
      return cmd_batch(args);
    }
    if (cmd == "serve") {
      return cmd_serve(args);
    }
    if (cmd == "client") {
      return cmd_client(args);
    }
    if (cmd == "cache") {
      return cmd_cache(args);
    }
    if (cmd == "fuzz") {
      return cmd_fuzz(args);
    }
    if (cmd == "exact") {
      return cmd_exact(args);
    }
    if (cmd == "cec") {
      return cmd_cec(args);
    }
    if (cmd == "stats") {
      return cmd_stats(args);
    }
    if (cmd == "report") {
      return cmd_report(args);
    }
    if (cmd == "version" || cmd == "--version") {
      return cmd_version(args);
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const robust::IntegrityError& e) {
    std::fprintf(stderr, "integrity error: %s\n", e.what());
    if (!e.netlist_dump().empty()) {
      std::fprintf(stderr, "offending netlist:\n%s",
                   e.netlist_dump().c_str());
    }
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
