#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

enum class BufferSchedule {
  kAsap, // every gate fires as early as possible
  kAlap, // gates slide as late as their consumers allow; trades output-edge
         // buffers for input-edge buffers (not universally cheaper)
  kBest, // the cheaper of ASAP and ALAP
  /// Coordinate-descent slack distribution: every gate slides within its
  /// feasible stage window to the position minimizing the buffers on its
  /// incident edges, iterated to a fixed point — the per-edge-linear
  /// relaxation of the buffer/splitter insertion optimizations the paper
  /// cites ([13], [14]). Never worse than ASAP or ALAP.
  kOptimized
};

struct BufferPlan {
  /// Buffers on each gate-input edge, indexed [gate][input 0..2].
  std::vector<std::array<std::uint32_t, 3>> gate_edges;
  /// Buffers aligning each PO to the final clock stage.
  std::vector<std::uint32_t> po_edges;
  std::uint32_t total = 0;
  std::uint32_t depth = 0;
};

/// Reusable buffer-scheduling engine. One instance owns every work array
/// the schedules need (ALAP latest-levels, coordinate-descent levels, the
/// consumer CSR, per-gate PO-fanin counts), so repeated planning — the
/// fitness hot path evaluates a schedule per correct offspring — touches
/// the allocator only until the arrays reach steady-state capacity.
///
/// `plan` reproduces `plan_buffers` exactly (same levels, same
/// tie-breaks). `masked_total` is the incremental-cost entry point: it
/// prices the *live* subnetwork in place, against the liveness mask and
/// precomputed ASAP levels a CostCache maintains, and equals
/// `plan_buffers(net.remove_dead_gates(), schedule).total` without
/// materializing the copy.
class BufferScheduler {
public:
  BufferPlan plan(const Netlist& net, BufferSchedule schedule);

  /// Buffer total of the live subnetwork. `live` has one byte per gate;
  /// `level` holds the full-netlist ASAP levels (live gates read only live
  /// inputs, so their levels coincide with the dead-gate-free copy's);
  /// `depth` is the live depth (`net.depth(level)`).
  std::uint32_t masked_total(const Netlist& net,
                             const std::vector<std::uint8_t>& live,
                             const std::vector<std::uint32_t>& level,
                             std::uint32_t depth, BufferSchedule schedule);

  /// Bytes of scratch currently held (capacity, not size).
  std::size_t scratch_bytes() const;

private:
  // `live == nullptr` means every gate participates (the `plan` path,
  // which must keep the historical dead-gates-included semantics for raw
  // netlists).
  std::uint32_t total_for(const Netlist& net, const std::uint8_t* live,
                          const std::vector<std::uint32_t>& level,
                          std::uint32_t depth) const;
  void alap_levels(const Netlist& net, const std::uint8_t* live,
                   const std::vector<std::uint32_t>& level,
                   std::uint32_t depth);
  // Computes alap_ and its buffer total in one pass (feed-forward ordering
  // makes a gate's sources final before the gate itself is visited).
  std::uint32_t alap_total(const Netlist& net, const std::uint8_t* live,
                           const std::vector<std::uint32_t>& level,
                           std::uint32_t depth);
  void build_consumers(const Netlist& net, const std::uint8_t* live);
  // `level` must be the ASAP levels (the descent's starting point and the
  // source of its no-move guarantees). Returns the signed change in the
  // buffer total relative to that starting assignment.
  std::int64_t optimized_levels(const Netlist& net, const std::uint8_t* live,
                                const std::vector<std::uint32_t>& level,
                                std::uint32_t depth);

  std::vector<std::uint32_t> asap_;        // plan() only
  std::vector<std::uint32_t> alap_;        // ALAP level assignment
  std::vector<std::uint32_t> opt_;         // coordinate-descent levels
  std::vector<std::uint32_t> latest_;      // ALAP upper bounds
  std::vector<std::uint8_t> constrained_;  // ALAP: latest_[g] is bound
  std::vector<std::uint32_t> consumer_off_; // CSR offsets, size n+1
  std::vector<std::uint32_t> consumers_;    // CSR payload
  std::vector<std::uint32_t> cursor_;       // CSR fill cursors
  std::vector<std::uint32_t> po_fanin_;     // POs bound to each gate
  std::vector<std::int32_t> slope_;         // descent cost slopes (invariant)
  std::vector<std::uint8_t> dirty_;         // descent re-evaluation marks
};

/// Path-balancing buffer computation (paper §3.3): every input of a gate
/// at clock stage L must be produced at stage L-1; the difference is made
/// up with RQFP buffers (2 cascaded AQFP buffers, 4 JJs each). Primary
/// inputs sit at stage 0 and all primary outputs are aligned to the final
/// stage. Constant inputs are supplied by the excitation current and need
/// no buffers. One-shot wrapper over BufferScheduler::plan.
BufferPlan plan_buffers(const Netlist& net,
                        BufferSchedule schedule = BufferSchedule::kAsap);

/// Total buffers only.
std::uint32_t count_buffers(const Netlist& net,
                            BufferSchedule schedule = BufferSchedule::kAsap);

} // namespace rcgp::rqfp
