#pragma once

#include <cstdint>
#include <vector>

#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

enum class BufferSchedule {
  kAsap, // every gate fires as early as possible
  kAlap, // gates slide as late as their consumers allow; trades output-edge
         // buffers for input-edge buffers (not universally cheaper)
  kBest, // the cheaper of ASAP and ALAP
  /// Coordinate-descent slack distribution: every gate slides within its
  /// feasible stage window to the position minimizing the buffers on its
  /// incident edges, iterated to a fixed point — the per-edge-linear
  /// relaxation of the buffer/splitter insertion optimizations the paper
  /// cites ([13], [14]). Never worse than ASAP or ALAP.
  kOptimized
};

struct BufferPlan {
  /// Buffers on each gate-input edge, indexed [gate][input 0..2].
  std::vector<std::array<std::uint32_t, 3>> gate_edges;
  /// Buffers aligning each PO to the final clock stage.
  std::vector<std::uint32_t> po_edges;
  std::uint32_t total = 0;
  std::uint32_t depth = 0;
};

/// Path-balancing buffer computation (paper §3.3): every input of a gate
/// at clock stage L must be produced at stage L-1; the difference is made
/// up with RQFP buffers (2 cascaded AQFP buffers, 4 JJs each). Primary
/// inputs sit at stage 0 and all primary outputs are aligned to the final
/// stage. Constant inputs are supplied by the excitation current and need
/// no buffers.
BufferPlan plan_buffers(const Netlist& net,
                        BufferSchedule schedule = BufferSchedule::kAsap);

/// Total buffers only.
std::uint32_t count_buffers(const Netlist& net,
                            BufferSchedule schedule = BufferSchedule::kAsap);

} // namespace rcgp::rqfp
