#pragma once

#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

struct SplitterStats {
  std::uint32_t splitters_added = 0;
  std::uint32_t max_fanout_before = 0;
};

/// Enforces the single fan-out limitation by inserting RQFP splitter gates
/// (R(1, a, 0) = {a, a, a}, paper §2.1).
///
/// The input netlist may consume any port multiple times; the result
/// consumes every non-constant port at most once: each over-subscribed
/// port gets a balanced splitter tree (one splitter turns one copy into
/// three, a net +2) placed immediately after its producer, and consumers
/// are redirected to distinct copies in order of appearance. The constant
/// port is exempt (it is supplied by the excitation current).
Netlist insert_splitters(const Netlist& input, SplitterStats* stats = nullptr);

} // namespace rcgp::rqfp
