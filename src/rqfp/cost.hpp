#pragma once

#include <cstdint>
#include <string>

#include "rqfp/buffer.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

/// The cost columns reported in the paper's Tables 1 and 2.
struct Cost {
  std::uint32_t n_r = 0;  // RQFP logic gates (splitters included)
  std::uint32_t n_b = 0;  // path-balancing RQFP buffers
  std::uint32_t jjs = 0;  // Josephson junctions: 24*n_r + 4*n_b
  std::uint32_t n_d = 0;  // circuit depth in clock stages
  std::uint32_t n_g = 0;  // garbage outputs

  std::string to_string() const;
};

/// Cost of a netlist. Dead gates are removed before measuring (the CGP
/// shrink step guarantees none remain in reported circuits, but callers
/// may pass raw netlists).
Cost cost_of(const Netlist& net,
             BufferSchedule schedule = BufferSchedule::kAsap);

/// Lower bound on garbage outputs from the paper: g_lb = max(0, n_pi-n_po).
std::uint32_t garbage_lower_bound(unsigned num_pis, unsigned num_pos);

} // namespace rcgp::rqfp
