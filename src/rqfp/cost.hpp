#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rqfp/buffer.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

/// The cost columns reported in the paper's Tables 1 and 2.
struct Cost {
  std::uint32_t n_r = 0;  // RQFP logic gates (splitters included)
  std::uint32_t n_b = 0;  // path-balancing RQFP buffers
  std::uint32_t jjs = 0;  // Josephson junctions: 24*n_r + 4*n_b
  std::uint32_t n_d = 0;  // circuit depth in clock stages
  std::uint32_t n_g = 0;  // garbage outputs

  std::string to_string() const;

  bool operator==(const Cost&) const = default;
};

/// Reusable scratch and cached base-netlist analysis for incremental cost
/// evaluation — the cost-side mirror of rqfp::SimCache. A cache is bound
/// to one (base netlist, schedule) pair by build_cost_cache; after that,
/// cost_of_delta prices mutated offspring against the cached liveness
/// mask and ASAP levels without the remove_dead_gates() copy or any
/// steady-state allocation, and update_cost_cache commits an accepted
/// offspring so one cache follows a whole evolutionary trajectory.
struct CostCache {
  bool valid = false;

  // ---- shape and identity of the cached base ----
  unsigned num_pis = 0;
  std::uint32_t num_gates = 0;
  unsigned num_pos = 0;
  BufferSchedule schedule = BufferSchedule::kAsap;

  // ---- cached analysis of the base netlist ----
  Cost base_cost;
  std::vector<std::uint8_t> live;    // per-gate liveness mask
  std::vector<std::uint32_t> level;  // per-gate ASAP levels

  // ---- scratch (managed by the cost_* functions) ----
  std::vector<std::uint8_t> child_live;
  std::vector<std::uint32_t> child_level;
  std::vector<std::uint32_t> stack;   // liveness DFS worklist
  std::vector<std::uint32_t> fanout;  // per-port consumer counts (n_g)
  BufferScheduler scheduler;

  /// Bytes of scratch currently held (capacities, including the
  /// scheduler's work arrays). Constant across steady-state evaluations —
  /// the property tests use it as a zero-allocation proxy.
  std::size_t scratch_bytes() const;
};

/// Cost of a netlist. Dead gates are excluded by an in-place liveness
/// marking pass (no netlist copy is made; the CGP shrink step guarantees
/// none remain in reported circuits, but callers may pass raw netlists).
Cost cost_of(const Netlist& net,
             BufferSchedule schedule = BufferSchedule::kAsap);

/// Full analysis of `net`: liveness, ASAP levels, depth, and the cost
/// under `schedule`, all recorded into `cache` (scratch is reused, so a
/// warm cache allocates nothing). Counts toward evolve.cost.full_recomputes.
Cost build_cost_cache(const Netlist& net, BufferSchedule schedule,
                      CostCache& cache);

/// Incremental cost of `child`, a mutated copy of `base`, against a cache
/// built for `base`. Gene diffs are discovered by comparing the two
/// netlists; the 4-argument overload below skips that scan when the
/// caller knows which gates were touched. The cache itself is not
/// modified (one cache serves every offspring of a generation); commit an
/// accepted child with update_cost_cache.
///
/// Incremental structure: inverter-config-only changes cannot move the
/// cost (it is topology-only), and neither can rewires confined to dead
/// gates (liveness flows from POs through live consumers only, so the
/// live subnetwork is untouched — the CGP neutral-drift case); both
/// return the cached base cost outright. Otherwise liveness is re-marked
/// in place and the ASAP levels are reused verbatim up to the first gate
/// whose inputs changed, with only the suffix recomputed. The buffer
/// schedules are re-run over the live mask (they are global), but
/// allocation-free.
///
/// Throws std::invalid_argument when the cache is not built or the
/// shapes (PI/gate/PO counts) disagree — the same contract as
/// rqfp::simulate_delta.
Cost cost_of_delta(const Netlist& base, const Netlist& child,
                   CostCache& cache);

/// As above, but trusts `touched_gates` (indices of gates whose genes a
/// mutation may have rewritten; PO bindings are always re-checked) instead
/// of scanning every gate for diffs.
Cost cost_of_delta(const Netlist& base, const Netlist& child,
                   std::span<const std::uint32_t> touched_gates,
                   CostCache& cache);

/// Commits `to` (a mutated copy of `from`, which `cache` describes) as the
/// cache's new base and returns its cost. Used when an offspring is
/// accepted as the next parent.
Cost update_cost_cache(const Netlist& from, const Netlist& to,
                       CostCache& cache);

/// Lower bound on garbage outputs from the paper: g_lb = max(0, n_pi-n_po).
std::uint32_t garbage_lower_bound(unsigned num_pis, unsigned num_pos);

} // namespace rcgp::rqfp
