#include "rqfp/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcgp::rqfp {

std::uint32_t Netlist::add_gate(const std::array<Port, 3>& inputs,
                                InvConfig config) {
  const Port limit = first_free_port();
  for (const Port p : inputs) {
    if (p >= limit) {
      throw std::invalid_argument("Netlist::add_gate: forward reference");
    }
  }
  gates_.push_back(Gate{inputs, config});
  return static_cast<std::uint32_t>(gates_.size() - 1);
}

std::uint32_t Netlist::add_po(Port p, const std::string& name) {
  if (p >= first_free_port()) {
    throw std::invalid_argument("Netlist::add_po: port out of range");
  }
  pos_.push_back(p);
  po_names_.push_back(name.empty() ? "y" + std::to_string(pos_.size() - 1)
                                   : name);
  return static_cast<std::uint32_t>(pos_.size() - 1);
}

std::vector<std::uint32_t> Netlist::port_fanout() const {
  std::vector<std::uint32_t> fanout(first_free_port(), 0);
  for (const auto& g : gates_) {
    for (const Port p : g.in) {
      ++fanout[p];
    }
  }
  for (const Port p : pos_) {
    ++fanout[p];
  }
  return fanout;
}

std::string Netlist::validate() const {
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    const Port limit = port_of(g, 0);
    for (const Port p : gates_[g].in) {
      if (p >= limit) {
        return "gate " + std::to_string(g) + " reads port " +
               std::to_string(p) + " not yet produced";
      }
    }
  }
  for (const Port p : pos_) {
    if (p >= first_free_port()) {
      return "PO reads port " + std::to_string(p) + " out of range";
    }
  }
  const auto fanout = port_fanout();
  for (Port p = 1; p < fanout.size(); ++p) {
    if (fanout[p] > 1) {
      return "port " + std::to_string(p) + " has fan-out " +
             std::to_string(fanout[p]) + " (limit 1)";
    }
  }
  return "";
}

std::uint32_t Netlist::count_garbage_outputs() const {
  const auto fanout = port_fanout();
  std::uint32_t garbage = 0;
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    for (unsigned k = 0; k < 3; ++k) {
      if (fanout[port_of(g, k)] == 0) {
        ++garbage;
      }
    }
  }
  return garbage;
}

std::vector<bool> Netlist::live_gates() const {
  std::vector<bool> live(gates_.size(), false);
  std::vector<std::uint32_t> stack;
  for (const Port p : pos_) {
    if (is_gate_port(p)) {
      const std::uint32_t g = gate_of_port(p);
      if (!live[g]) {
        live[g] = true;
        stack.push_back(g);
      }
    }
  }
  while (!stack.empty()) {
    const std::uint32_t g = stack.back();
    stack.pop_back();
    for (const Port p : gates_[g].in) {
      if (is_gate_port(p)) {
        const std::uint32_t src = gate_of_port(p);
        if (!live[src]) {
          live[src] = true;
          stack.push_back(src);
        }
      }
    }
  }
  return live;
}

Netlist Netlist::remove_dead_gates() const {
  const auto live = live_gates();
  Netlist out(num_pis_);
  out.pi_names_ = pi_names_;
  // old gate index -> new gate index
  std::vector<std::uint32_t> remap(gates_.size(), 0);
  auto remap_port = [&](Port p) -> Port {
    if (!is_gate_port(p)) {
      return p;
    }
    return out.port_of(remap[gate_of_port(p)], slot_of_port(p));
  };
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    if (!live[g]) {
      continue;
    }
    std::array<Port, 3> in{};
    for (unsigned i = 0; i < 3; ++i) {
      in[i] = remap_port(gates_[g].in[i]);
    }
    remap[g] = out.add_gate(in, gates_[g].config);
  }
  for (std::uint32_t i = 0; i < pos_.size(); ++i) {
    out.add_po(remap_port(pos_[i]), po_names_[i]);
  }
  return out;
}

std::vector<std::uint32_t> Netlist::gate_levels() const {
  std::vector<std::uint32_t> level;
  gate_levels(level);
  return level;
}

void Netlist::gate_levels(std::vector<std::uint32_t>& out) const {
  out.resize(gates_.size());
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    std::uint32_t m = 0;
    for (const Port p : gates_[g].in) {
      if (is_gate_port(p)) {
        m = std::max(m, out[gate_of_port(p)]);
      }
    }
    out[g] = m + 1;
  }
}

std::uint32_t Netlist::depth() const {
  return depth(gate_levels());
}

std::uint32_t Netlist::depth(std::span<const std::uint32_t> level) const {
  std::uint32_t d = 0;
  for (const Port p : pos_) {
    if (is_gate_port(p)) {
      d = std::max(d, level[gate_of_port(p)]);
    }
  }
  return d;
}

} // namespace rcgp::rqfp
