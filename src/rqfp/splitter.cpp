#include "rqfp/splitter.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace rcgp::rqfp {

namespace {

/// Copies of an original port available in the rebuilt netlist.
struct CopyPool {
  std::deque<Port> available;
};

/// Emits a splitter chain in `out` until `pool` holds at least `needed`
/// copies. Consumes copies FIFO so the tree stays shallow.
void grow_pool(Netlist& out, CopyPool& pool, std::uint32_t needed,
               std::uint32_t& splitters_added) {
  while (pool.available.size() < needed) {
    const Port src = pool.available.front();
    pool.available.pop_front();
    const std::uint32_t g =
        out.add_gate({kConstPort, src, kConstPort}, InvConfig::splitter());
    ++splitters_added;
    for (unsigned k = 0; k < 3; ++k) {
      pool.available.push_back(out.port_of(g, k));
    }
  }
}

} // namespace

Netlist insert_splitters(const Netlist& input, SplitterStats* stats) {
  SplitterStats local;
  const auto fanout = input.port_fanout();
  for (Port p = 1; p < fanout.size(); ++p) {
    local.max_fanout_before = std::max(local.max_fanout_before, fanout[p]);
  }

  Netlist out(input.num_pis());
  if (input.has_pi_names()) {
    std::vector<std::string> names;
    names.reserve(input.num_pis());
    for (std::uint32_t i = 0; i < input.num_pis(); ++i) {
      names.push_back(input.pi_name(i));
    }
    out.set_pi_names(std::move(names));
  }

  // Pool per original port. Constant port maps to itself with no limit.
  std::vector<CopyPool> pools(input.first_free_port());
  for (Port p = 1; p <= input.num_pis(); ++p) {
    pools[p].available.push_back(p);
    if (fanout[p] > 1) {
      grow_pool(out, pools[p], fanout[p], local.splitters_added);
    }
  }

  auto take_copy = [&](Port p) -> Port {
    if (p == kConstPort) {
      return kConstPort;
    }
    CopyPool& pool = pools[p];
    const Port copy = pool.available.front();
    pool.available.pop_front();
    return copy;
  };

  for (std::uint32_t g = 0; g < input.num_gates(); ++g) {
    const auto& gate = input.gate(g);
    std::array<Port, 3> in{};
    for (unsigned i = 0; i < 3; ++i) {
      in[i] = take_copy(gate.in[i]);
    }
    const std::uint32_t ng = out.add_gate(in, gate.config);
    for (unsigned k = 0; k < 3; ++k) {
      const Port orig = input.port_of(g, k);
      pools[orig].available.push_back(out.port_of(ng, k));
      if (fanout[orig] > 1) {
        grow_pool(out, pools[orig], fanout[orig], local.splitters_added);
      }
    }
  }

  for (std::uint32_t i = 0; i < input.num_pos(); ++i) {
    out.add_po(take_copy(input.po_at(i)), input.po_name(i));
  }

  if (stats) {
    *stats = local;
  }
  return out;
}

} // namespace rcgp::rqfp
