#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "tt/truth_table.hpp"

namespace rcgp::rqfp {

/// Inverter configuration of one RQFP logic gate.
///
/// An RQFP gate (Fig. 1(a) of the paper) has three inputs (a,b,c), three
/// internal 3-input AQFP majority gates, and an inverter slot in front of
/// every majority input: 9 slots = 512 configurations. Bit (3*k + i) of
/// `bits` complements input i of majority k, so output k is
///   y_k = MAJ(a ^ inv(k,0), b ^ inv(k,1), c ^ inv(k,2)).
class InvConfig {
public:
  constexpr InvConfig() = default;
  constexpr explicit InvConfig(std::uint16_t bits) : bits_(bits & 0x1FF) {}

  constexpr std::uint16_t bits() const { return bits_; }

  constexpr bool inverts(unsigned maj, unsigned input) const {
    return (bits_ >> (3 * maj + input)) & 1;
  }
  constexpr InvConfig with_flip(unsigned slot) const {
    return InvConfig(static_cast<std::uint16_t>(bits_ ^ (1u << slot)));
  }

  /// 3-bit row for majority `maj` (bit i complements input i).
  constexpr unsigned row(unsigned maj) const {
    return (bits_ >> (3 * maj)) & 7;
  }
  static constexpr InvConfig from_rows(unsigned r0, unsigned r1, unsigned r2) {
    return InvConfig(
        static_cast<std::uint16_t>((r0 & 7) | ((r1 & 7) << 3) | ((r2 & 7) << 6)));
  }

  /// "101-100-000"-style string as used in the paper's Fig. 3 (each group
  /// lists the three inverter bits of one majority, input 0 first).
  std::string to_string() const;
  static InvConfig parse(const std::string& text);

  bool operator==(const InvConfig&) const = default;

  /// The normal (logically reversible) RQFP gate of Fig. 1(a):
  /// R(a,b,c) = {M(!a,b,c), M(a,!b,c), M(a,b,!c)}.
  static constexpr InvConfig reversible() { return from_rows(1, 2, 4); }

  /// 1-to-3 splitter rows for R(1, a, 0): every majority computes
  /// M(1, a, 0) = a (input 0 = constant 1, input 2 = constant 1 inverted).
  static constexpr InvConfig splitter() { return from_rows(4, 4, 4); }

  /// All three outputs equal to MAJ(a^c0, b^c1, c^c2): identical rows.
  static constexpr InvConfig triple(unsigned row_bits) {
    return from_rows(row_bits, row_bits, row_bits);
  }

private:
  std::uint16_t bits_ = 0;
};

/// Evaluates one RQFP gate bit-parallel on 64-bit words.
std::array<std::uint64_t, 3> eval_gate_words(InvConfig config,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c);

/// Evaluates one RQFP gate on truth tables.
std::array<tt::TruthTable, 3> eval_gate_tables(InvConfig config,
                                               const tt::TruthTable& a,
                                               const tt::TruthTable& b,
                                               const tt::TruthTable& c);

/// Allocation-reusing variant of eval_gate_tables: writes the three output
/// tables into o0..o2 (reshaped to the operands' arity when needed) through
/// the runtime-dispatched SIMD kernels (rqfp/simd.hpp) — one pass over the
/// input words computes all three majorities, no temporaries. This is the
/// simulation hot path; the outputs may be moved-from tables from a
/// previous call, but must not alias the inputs.
void eval_gate_tables_into(InvConfig config, const tt::TruthTable& a,
                           const tt::TruthTable& b, const tt::TruthTable& c,
                           tt::TruthTable& o0, tt::TruthTable& o1,
                           tt::TruthTable& o2);

/// Per-gate JJ costs of the AQFP realization (paper §4): an RQFP gate is
/// 3 splitters + 3 majorities = 3*2 + 3*6 = 24 JJs; an RQFP buffer is two
/// cascaded AQFP buffers = 4 JJs.
inline constexpr unsigned kJjsPerGate = 24;
inline constexpr unsigned kJjsPerBuffer = 4;

} // namespace rcgp::rqfp
