#pragma once

#include "rqfp/simd.hpp"

namespace rcgp::rqfp::simd {

/// Internal: per-tier kernel tables. The vector tables live in their own
/// translation units compiled with the matching -m flags (CMake adds them
/// only when the compiler supports the flag); simd.cpp references them
/// under the RCGP_SIMD_HAVE_* definitions and never calls one the CPU
/// cannot execute.
const Kernels& scalar_kernel_table();
const Kernels& avx2_kernel_table();
const Kernels& avx512_kernel_table();

} // namespace rcgp::rqfp::simd
