#include "rqfp/reversibility.hpp"

#include <cmath>
#include <unordered_map>

#include "rqfp/simulate.hpp"

namespace rcgp::rqfp {

ReversibilityReport analyze_reversibility(const Netlist& input) {
  const Netlist net = input.remove_dead_gates();
  ReversibilityReport report;

  // Boundary = POs plus garbage outputs (unconsumed gate output ports).
  const auto fanout = net.port_fanout();
  std::vector<Port> boundary;
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    boundary.push_back(net.po_at(o));
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned k = 0; k < 3; ++k) {
      const Port p = net.port_of(g, k);
      if (fanout[p] == 0) {
        boundary.push_back(p);
      }
    }
  }
  report.boundary_outputs = static_cast<std::uint32_t>(boundary.size());

  const auto ports = simulate_ports(net);
  const std::uint64_t n = std::uint64_t{1} << net.num_pis();
  std::unordered_map<std::uint64_t, std::uint64_t> image; // key -> first x
  report.information_preserving = true;
  for (std::uint64_t x = 0; x < n; ++x) {
    // Boundary signature of assignment x, hashed incrementally. With up
    // to ~64 boundary bits a direct word is enough for the circuit sizes
    // analyzed exhaustively; beyond that, fold with a mixing hash.
    std::uint64_t key = 0xcbf29ce484222325ULL;
    for (const Port p : boundary) {
      key = (key ^ (ports[p].bit(x) ? 0x9E37ULL : 0x79B9ULL)) *
            0x100000001B3ULL;
    }
    const auto [it, inserted] = image.emplace(key, x);
    if (!inserted && report.information_preserving) {
      // Confirm the collision bit-by-bit (hash collisions are possible).
      bool same = true;
      for (const Port p : boundary) {
        if (ports[p].bit(x) != ports[p].bit(it->second)) {
          same = false;
          break;
        }
      }
      if (same) {
        report.information_preserving = false;
        report.collision = {it->second, x};
      }
    }
  }
  report.image_size = image.size();
  report.erased_bits =
      static_cast<double>(net.num_pis()) -
      std::log2(static_cast<double>(report.image_size));
  if (report.erased_bits < 0) {
    report.erased_bits = 0;
  }
  return report;
}

bool gate_is_bijective(InvConfig config) {
  unsigned seen = 0;
  for (unsigned x = 0; x < 8; ++x) {
    const auto out = eval_gate_words(config, (x & 1) ? ~0ull : 0,
                                     (x & 2) ? ~0ull : 0, (x & 4) ? ~0ull : 0);
    const unsigned y = static_cast<unsigned>((out[0] & 1) |
                                             ((out[1] & 1) << 1) |
                                             ((out[2] & 1) << 2));
    seen |= 1u << y;
  }
  return seen == 0xFF;
}

unsigned count_bijective_configs() {
  unsigned count = 0;
  for (unsigned bits = 0; bits < 512; ++bits) {
    if (gate_is_bijective(InvConfig(static_cast<std::uint16_t>(bits)))) {
      ++count;
    }
  }
  return count;
}

} // namespace rcgp::rqfp
