#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "rqfp/netlist.hpp"
#include "rqfp/sim_batch.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::rqfp {

/// Exhaustive simulation: truth table of every port over the PIs.
/// Index = port number. Requires num_pis() <= TruthTable::kMaxVars.
std::vector<tt::TruthTable> simulate_ports(const Netlist& net);

/// Exhaustive simulation of the primary outputs only.
std::vector<tt::TruthTable> simulate(const Netlist& net);

/// Simulation restricted to the live cone feeding the POs — the fast path
/// used inside the CGP fitness loop (dead gates do not affect POs).
std::vector<tt::TruthTable> simulate_live(const Netlist& net);

/// Reusable exhaustive-simulation state for the dirty-cone incremental
/// fast path. `ports` holds the truth table of every port of a base
/// netlist (full simulate_ports semantics — dead gates included, so PO
/// moves onto currently-dead cones still read correct values); the other
/// members are scratch reused across simulate_delta calls. One SimCache
/// per worker thread gives allocation-free offspring evaluation: only the
/// cone downstream of changed genes is ever re-simulated.
struct SimCache {
  std::vector<tt::TruthTable> ports;
  unsigned num_pis = 0;
  std::uint32_t num_gates = 0;

  // --- scratch internals (managed by the simulate_* functions) ---
  struct UndoEntry {
    Port port = 0;
    tt::TruthTable value;
  };
  std::vector<std::uint8_t> dirty;
  std::vector<UndoEntry> undo;
  std::size_t undo_size = 0;
  std::vector<tt::TruthTable> po_scratch;
  std::array<tt::TruthTable, 3> gate_scratch;
};

/// Fully simulates `net` into `cache` (capacity-reusing). Afterwards
/// cache.ports[p] is the table of port p and the cache can serve
/// update_sim_cache / simulate_delta calls for same-shaped netlists.
void build_sim_cache(const Netlist& net, SimCache& cache);

/// Re-simulates the dirty cone of `to` relative to `from` — whose port
/// values the cache currently holds — and commits: the cache then holds
/// `to`'s values. `from` and `to` must agree on PI and gate counts
/// (CGP mutation preserves both); throws std::invalid_argument otherwise.
void update_sim_cache(const Netlist& from, const Netlist& to,
                      SimCache& cache);

/// Dirty-cone incremental simulation: PO tables of `child` given a cache
/// holding `base`'s port values. Only gates whose genes changed, or whose
/// cone inputs did, are re-evaluated; a recomputed value equal to the
/// cached one stops the cone early. The cache is restored to `base`'s
/// values before returning, so one cache serves all λ siblings of a
/// generation. Same shape requirements as update_sim_cache.
/// Bit-identical to simulate(child) / simulate_live(child) PO tables.
void simulate_delta(const Netlist& base, const Netlist& child,
                    SimCache& cache, std::vector<tt::TruthTable>& po_out);

/// Reusable scratch for simulate_delta_batch: one overlay per offspring of
/// a λ-block. All members are managed by simulate_delta_batch and carry
/// their allocations across generations; `po` of child c holds its PO
/// tables after the call.
struct DeltaBatch {
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  struct Child {
    std::vector<tt::TruthTable> po;
    // --- scratch internals ---
    std::vector<std::uint8_t> dirty;    // per-port: overlay holds this port
    std::vector<std::uint32_t> slot;    // per-port index into values
    std::vector<tt::TruthTable> values; // overlay pool (used prefix live)
    std::size_t used = 0;
    std::vector<Port> touched;
  };
  std::vector<Child> children;
};

/// λ-batched dirty-cone simulation: evaluates every child of one
/// generation in a single gate-major pass against a read-only base cache.
/// For each gate, each child whose genes changed there — or whose cone is
/// already dirty — re-evaluates it into a private sparse overlay; all
/// other reads hit the shared base port tables, which are never written,
/// so there is no per-sibling undo/restore churn and each gate's base rows
/// stay cache-hot across the whole block. Per child this visits the same
/// gates in the same order with the same operand values as
/// simulate_delta(base, child, ...), so the PO tables (batch.children[c].po)
/// are bit-identical to the sequential path. The cache must currently hold
/// `base`'s values (i.e. not be mid-delta); shape requirements are as in
/// update_sim_cache, checked per child.
void simulate_delta_batch(const Netlist& base,
                          const std::vector<const Netlist*>& children,
                          const SimCache& cache, DeltaBatch& batch);

/// Word-parallel pattern simulation for wide circuits. `pi` must have one
/// row per PI (pi.rows() == net.num_pis(), validated up front); the word
/// count is taken from the batch, so it is explicit even for netlists
/// without PIs. `po` is reshaped to num_pos() x pi.words() and `scratch`
/// holds the per-port values — both reuse capacity across calls, so
/// repeated simulations allocate nothing.
void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po,
                       SimBatch& scratch);

/// Convenience overload with an internal scratch buffer.
void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po);

/// Evaluate on a single input assignment (bit i = PI i); returns PO bits.
std::vector<bool> evaluate(const Netlist& net, std::uint64_t assignment);

} // namespace rcgp::rqfp
