#pragma once

#include <cstdint>
#include <vector>

#include "rqfp/netlist.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::rqfp {

/// Exhaustive simulation: truth table of every port over the PIs.
/// Index = port number. Requires num_pis() <= TruthTable::kMaxVars.
std::vector<tt::TruthTable> simulate_ports(const Netlist& net);

/// Exhaustive simulation of the primary outputs only.
std::vector<tt::TruthTable> simulate(const Netlist& net);

/// Simulation restricted to the live cone feeding the POs — the fast path
/// used inside the CGP fitness loop (dead gates do not affect POs).
std::vector<tt::TruthTable> simulate_live(const Netlist& net);

/// Word-parallel pattern simulation for wide circuits: one word vector per
/// PI, returns one per PO.
std::vector<std::vector<std::uint64_t>> simulate_patterns(
    const Netlist& net,
    const std::vector<std::vector<std::uint64_t>>& pi_patterns);

/// Evaluate on a single input assignment (bit i = PI i); returns PO bits.
std::vector<bool> evaluate(const Netlist& net, std::uint64_t assignment);

} // namespace rcgp::rqfp
