#pragma once

#include "rqfp/cost.hpp"
#include "rqfp/netlist.hpp"
#include "rqfp/reversibility.hpp"

namespace rcgp::rqfp {

/// Energy model tying the paper's motivation (§1, Landauer 1961) to the
/// JJ-count cost metric. All energies in joules.
struct EnergyEstimate {
  double temperature_kelvin = 4.2; // liquid-helium operation
  /// Landauer bound k_B * T * ln2 per erased bit.
  double landauer_per_bit = 0.0;
  /// Information erased at the circuit boundary, in bits per computation.
  double erased_bits = 0.0;
  /// Thermodynamic minimum per computation for this circuit.
  double landauer_floor = 0.0;
  /// Switching-energy estimate from the JJ count (adiabatic QFP devices
  /// dissipate orders of magnitude below I_c*Phi_0 per JJ; the scale
  /// factor is configurable).
  double switching_estimate = 0.0;
  unsigned jjs = 0;
};

inline constexpr double kBoltzmann = 1.380649e-23; // J/K
/// Single-flux-quantum energy scale I_c * Phi_0 for a typical 50 uA
/// junction (Phi_0 = 2.067833848e-15 Wb).
inline constexpr double kIcPhi0 = 50e-6 * 2.067833848e-15;

/// Landauer limit k_B T ln 2 for one bit at temperature T.
double landauer_limit(double temperature_kelvin);

/// Estimates the energy picture of a netlist: the Landauer floor follows
/// from the reversibility analysis (erased bits at the boundary), the
/// switching estimate from the JJ count scaled by `per_jj_fraction` of
/// I_c*Phi_0 (adiabatic operation reaches ~1e-4 and below).
EnergyEstimate estimate_energy(const Netlist& net,
                               double temperature_kelvin = 4.2,
                               double per_jj_fraction = 1e-4);

} // namespace rcgp::rqfp
