#pragma once

// Internal: AVX2 positional-popcount of a XOR stream (the Mula nibble-LUT
// + VPSADBW reduction), shared by the avx2 and avx512 kernel TUs — both
// are compiled with AVX2 enabled, and VPOPCNTDQ is not part of the
// avx512f baseline this project targets.

#include <bit>
#include <cstddef>
#include <cstdint>

#ifdef __AVX2__
#include <immintrin.h>

namespace rcgp::rqfp::simd::detail {

inline std::uint64_t xor_popcount_avx2(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t n) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                        _mm256_shuffle_epi8(lookup, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < n; ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

} // namespace rcgp::rqfp::simd::detail

#endif // __AVX2__
