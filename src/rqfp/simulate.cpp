#include "rqfp/simulate.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "rqfp/simd.hpp"

namespace rcgp::rqfp {

namespace {

/// Shared PI/constant-port initialisation of every exhaustive-simulation
/// entry point: arity check, one all-zero table per port, constant-1 on
/// kConstPort and a projection per PI. Returns the number of PIs.
unsigned init_port_tables(const Netlist& net,
                          std::vector<tt::TruthTable>& port,
                          const char* who) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument(std::string(who) + ": too many PIs");
  }
  port.assign(net.first_free_port(), tt::TruthTable(nv));
  port[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    port[1 + i] = tt::TruthTable::projection(nv, i);
  }
  return nv;
}

/// Words one truth table over `nv` variables occupies.
std::size_t table_words(unsigned nv) {
  return nv >= 6 ? std::size_t{1} << (nv - 6) : 1;
}

/// Words the last exhaustive pass pushed through the gate kernels —
/// 3 output tables per evaluated gate (docs/SIMD.md digest).
void count_sim_words(std::uint64_t gates_evaluated, std::size_t words) {
  obs::registry().counter("sim.words").inc(3 * gates_evaluated * words);
}

} // namespace

std::vector<tt::TruthTable> simulate_ports(const Netlist& net) {
  std::vector<tt::TruthTable> port;
  init_port_tables(net, port, "rqfp::simulate");
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    // Gate outputs are always-fresh ports, so writing them in place never
    // aliases the (earlier) input ports.
    eval_gate_tables_into(gate.config, port[gate.in[0]], port[gate.in[1]],
                          port[gate.in[2]], port[net.port_of(g, 0)],
                          port[net.port_of(g, 1)], port[net.port_of(g, 2)]);
  }
  count_sim_words(net.num_gates(), table_words(net.num_pis()));
  return port;
}

std::vector<tt::TruthTable> simulate(const Netlist& net) {
  const auto port = simulate_ports(net);
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

std::vector<tt::TruthTable> simulate_live(const Netlist& net) {
  const auto live = net.live_gates();
  std::vector<tt::TruthTable> port;
  init_port_tables(net, port, "rqfp::simulate_live");
  std::uint64_t evaluated = 0;
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue;
    }
    const auto& gate = net.gate(g);
    eval_gate_tables_into(gate.config, port[gate.in[0]], port[gate.in[1]],
                          port[gate.in[2]], port[net.port_of(g, 0)],
                          port[net.port_of(g, 1)], port[net.port_of(g, 2)]);
    ++evaluated;
  }
  count_sim_words(evaluated, table_words(net.num_pis()));
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

void build_sim_cache(const Netlist& net, SimCache& cache) {
  const unsigned nv =
      init_port_tables(net, cache.ports, "rqfp::build_sim_cache");
  cache.num_pis = nv;
  cache.num_gates = net.num_gates();
  cache.dirty.assign(net.first_free_port(), 0);
  cache.undo_size = 0;
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    eval_gate_tables_into(gate.config, cache.ports[gate.in[0]],
                          cache.ports[gate.in[1]], cache.ports[gate.in[2]],
                          cache.ports[net.port_of(g, 0)],
                          cache.ports[net.port_of(g, 1)],
                          cache.ports[net.port_of(g, 2)]);
  }
  count_sim_words(net.num_gates(), table_words(nv));
}

namespace {

void check_delta_shape(const Netlist& base, const Netlist& child,
                       const SimCache& cache, const char* who) {
  if (base.num_pis() != cache.num_pis ||
      base.num_gates() != cache.num_gates) {
    throw std::invalid_argument(std::string(who) +
                                ": cache was built from a different netlist "
                                "shape");
  }
  if (child.num_pis() != base.num_pis() ||
      child.num_gates() != base.num_gates()) {
    throw std::invalid_argument(std::string(who) +
                                ": netlist shapes differ (PI or gate count)");
  }
}

/// Re-evaluates `to`'s gates whose genes differ from `from` or whose
/// inputs are already dirty, saving every displaced port value on the
/// cache's undo list. A recomputed value equal to the cached one is not a
/// change — the cone stops there.
void propagate_dirty(const Netlist& from, const Netlist& to,
                     SimCache& cache) {
  cache.undo_size = 0;
  auto& out = cache.gate_scratch;
  std::uint64_t evaluated = 0;
  for (std::uint32_t g = 0; g < to.num_gates(); ++g) {
    const auto& tg = to.gate(g);
    const bool gene_changed = !(tg == from.gate(g));
    const bool input_dirty = cache.dirty[tg.in[0]] != 0 ||
                             cache.dirty[tg.in[1]] != 0 ||
                             cache.dirty[tg.in[2]] != 0;
    if (!gene_changed && !input_dirty) {
      continue;
    }
    eval_gate_tables_into(tg.config, cache.ports[tg.in[0]],
                          cache.ports[tg.in[1]], cache.ports[tg.in[2]],
                          out[0], out[1], out[2]);
    ++evaluated;
    for (unsigned k = 0; k < 3; ++k) {
      const Port p = to.port_of(g, k);
      if (out[k] == cache.ports[p]) {
        continue;
      }
      if (cache.undo_size == cache.undo.size()) {
        cache.undo.emplace_back();
      }
      auto& u = cache.undo[cache.undo_size++];
      u.port = p;
      // Swaps keep every table's allocation in circulation: the displaced
      // value parks in the undo slot, the undo slot's stale table becomes
      // next round's scratch.
      std::swap(u.value, cache.ports[p]);
      std::swap(cache.ports[p], out[k]);
      cache.dirty[p] = 1;
    }
  }
  if (evaluated != 0) {
    count_sim_words(evaluated, table_words(cache.num_pis));
  }
}

} // namespace

void update_sim_cache(const Netlist& from, const Netlist& to,
                      SimCache& cache) {
  check_delta_shape(from, to, cache, "rqfp::update_sim_cache");
  propagate_dirty(from, to, cache);
  // Commit: keep the new values, only clear the dirty marks.
  for (std::size_t i = 0; i < cache.undo_size; ++i) {
    cache.dirty[cache.undo[i].port] = 0;
  }
  cache.undo_size = 0;
}

void simulate_delta(const Netlist& base, const Netlist& child,
                    SimCache& cache, std::vector<tt::TruthTable>& po_out) {
  check_delta_shape(base, child, cache, "rqfp::simulate_delta");
  propagate_dirty(base, child, cache);
  po_out.resize(child.num_pos());
  for (std::uint32_t i = 0; i < child.num_pos(); ++i) {
    po_out[i] = cache.ports[child.po_at(i)];
  }
  // Restore the cache to `base`'s values so it can serve the next sibling.
  for (std::size_t i = 0; i < cache.undo_size; ++i) {
    auto& u = cache.undo[i];
    std::swap(cache.ports[u.port], u.value);
    cache.dirty[u.port] = 0;
  }
  cache.undo_size = 0;
}

void simulate_delta_batch(const Netlist& base,
                          const std::vector<const Netlist*>& children,
                          const SimCache& cache, DeltaBatch& batch) {
  const Port num_ports = base.first_free_port();
  if (batch.children.size() < children.size()) {
    batch.children.resize(children.size());
  }
  for (std::size_t c = 0; c < children.size(); ++c) {
    check_delta_shape(base, *children[c], cache,
                      "rqfp::simulate_delta_batch");
    auto& ch = batch.children[c];
    ch.dirty.assign(num_ports, 0);
    ch.slot.assign(num_ports, DeltaBatch::kNoSlot);
    ch.used = 0;
    ch.touched.clear();
  }
  std::array<tt::TruthTable, 3> scratch;
  std::uint64_t evaluated = 0;
  // Gate-major: each gate's base-port rows are touched once for the whole
  // λ-block. Per child, a port reads its private overlay when dirty and
  // the shared (read-only) base cache otherwise — exactly the values the
  // sequential simulate_delta would see, in the same topological order.
  for (std::uint32_t g = 0; g < base.num_gates(); ++g) {
    const auto& bg = base.gate(g);
    for (std::size_t c = 0; c < children.size(); ++c) {
      auto& ch = batch.children[c];
      const auto& tg = children[c]->gate(g);
      const bool gene_changed = !(tg == bg);
      const bool input_dirty = ch.dirty[tg.in[0]] != 0 ||
                               ch.dirty[tg.in[1]] != 0 ||
                               ch.dirty[tg.in[2]] != 0;
      if (!gene_changed && !input_dirty) {
        continue;
      }
      const auto in = [&](Port p) -> const tt::TruthTable& {
        return ch.dirty[p] != 0 ? ch.values[ch.slot[p]] : cache.ports[p];
      };
      eval_gate_tables_into(tg.config, in(tg.in[0]), in(tg.in[1]),
                            in(tg.in[2]), scratch[0], scratch[1],
                            scratch[2]);
      ++evaluated;
      for (unsigned k = 0; k < 3; ++k) {
        const Port p = base.port_of(g, k);
        // Same cone cut-off as the sequential path: a recomputed value
        // equal to the base one is not a change.
        if (scratch[k] == cache.ports[p]) {
          continue;
        }
        if (ch.used == ch.values.size()) {
          ch.values.emplace_back();
        }
        std::swap(ch.values[ch.used], scratch[k]);
        ch.slot[p] = static_cast<std::uint32_t>(ch.used++);
        ch.dirty[p] = 1;
        ch.touched.push_back(p);
      }
    }
  }
  for (std::size_t c = 0; c < children.size(); ++c) {
    auto& ch = batch.children[c];
    const Netlist& net = *children[c];
    ch.po.resize(net.num_pos());
    for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
      const Port p = net.po_at(i);
      ch.po[i] = ch.dirty[p] != 0 ? ch.values[ch.slot[p]] : cache.ports[p];
    }
  }
  if (evaluated != 0) {
    count_sim_words(evaluated, table_words(cache.num_pis));
  }
}

void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po,
                       SimBatch& scratch) {
  if (pi.rows() != net.num_pis()) {
    throw std::invalid_argument(
        "rqfp::simulate_patterns: netlist has " +
        std::to_string(net.num_pis()) + " PIs but the batch has " +
        std::to_string(pi.rows()) + " rows");
  }
  const std::size_t words = pi.words();
  const auto& kernels = simd::kernels();
  scratch.resize(net.first_free_port(), words);
  scratch.fill_row(kConstPort, ~std::uint64_t{0});
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    std::copy(pi.row(i), pi.row(i) + words, scratch.row(1 + i));
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    kernels.gate3(gate.config.bits(), scratch.row(gate.in[0]),
                  scratch.row(gate.in[1]), scratch.row(gate.in[2]),
                  scratch.row(net.port_of(g, 0)),
                  scratch.row(net.port_of(g, 1)),
                  scratch.row(net.port_of(g, 2)), words);
  }
  count_sim_words(net.num_gates(), words);
  po.resize(net.num_pos(), words);
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const std::uint64_t* src = scratch.row(net.po_at(i));
    std::copy(src, src + words, po.row(i));
  }
}

void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po) {
  SimBatch scratch;
  simulate_patterns(net, pi, po, scratch);
}

std::vector<bool> evaluate(const Netlist& net, std::uint64_t assignment) {
  std::vector<std::uint64_t> port(net.first_free_port(), 0);
  port[kConstPort] = 1;
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port[1 + i] = (assignment >> i) & 1;
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out =
        eval_gate_words(gate.config, port[gate.in[0]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[1]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[2]] ? ~std::uint64_t{0} : 0);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k] & 1;
    }
  }
  std::vector<bool> result;
  result.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    result.push_back(port[net.po_at(i)] != 0);
  }
  return result;
}

} // namespace rcgp::rqfp
