#include "rqfp/simulate.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rcgp::rqfp {

std::vector<tt::TruthTable> simulate_ports(const Netlist& net) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("rqfp::simulate: too many PIs");
  }
  std::vector<tt::TruthTable> port(net.first_free_port(),
                                   tt::TruthTable::constant(nv, false));
  port[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    port[1 + i] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out = eval_gate_tables(gate.config, port[gate.in[0]],
                                      port[gate.in[1]], port[gate.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k];
    }
  }
  return port;
}

std::vector<tt::TruthTable> simulate(const Netlist& net) {
  const auto port = simulate_ports(net);
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

std::vector<tt::TruthTable> simulate_live(const Netlist& net) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("rqfp::simulate_live: too many PIs");
  }
  const auto live = net.live_gates();
  std::vector<tt::TruthTable> port(net.first_free_port(),
                                   tt::TruthTable::constant(nv, false));
  port[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    port[1 + i] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue;
    }
    const auto& gate = net.gate(g);
    const auto out = eval_gate_tables(gate.config, port[gate.in[0]],
                                      port[gate.in[1]], port[gate.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k];
    }
  }
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

void build_sim_cache(const Netlist& net, SimCache& cache) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("rqfp::build_sim_cache: too many PIs");
  }
  cache.num_pis = nv;
  cache.num_gates = net.num_gates();
  const Port n = net.first_free_port();
  cache.ports.resize(n);
  cache.dirty.assign(n, 0);
  cache.undo_size = 0;
  cache.ports[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    cache.ports[1 + i] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out =
        eval_gate_tables(gate.config, cache.ports[gate.in[0]],
                         cache.ports[gate.in[1]], cache.ports[gate.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      cache.ports[net.port_of(g, k)] = out[k];
    }
  }
}

namespace {

void check_delta_shape(const Netlist& base, const Netlist& child,
                       const SimCache& cache, const char* who) {
  if (base.num_pis() != cache.num_pis ||
      base.num_gates() != cache.num_gates) {
    throw std::invalid_argument(std::string(who) +
                                ": cache was built from a different netlist "
                                "shape");
  }
  if (child.num_pis() != base.num_pis() ||
      child.num_gates() != base.num_gates()) {
    throw std::invalid_argument(std::string(who) +
                                ": netlist shapes differ (PI or gate count)");
  }
}

/// Re-evaluates `to`'s gates whose genes differ from `from` or whose
/// inputs are already dirty, saving every displaced port value on the
/// cache's undo list. A recomputed value equal to the cached one is not a
/// change — the cone stops there.
void propagate_dirty(const Netlist& from, const Netlist& to,
                     SimCache& cache) {
  cache.undo_size = 0;
  for (std::uint32_t g = 0; g < to.num_gates(); ++g) {
    const auto& tg = to.gate(g);
    const bool gene_changed = !(tg == from.gate(g));
    const bool input_dirty = cache.dirty[tg.in[0]] != 0 ||
                             cache.dirty[tg.in[1]] != 0 ||
                             cache.dirty[tg.in[2]] != 0;
    if (!gene_changed && !input_dirty) {
      continue;
    }
    auto out =
        eval_gate_tables(tg.config, cache.ports[tg.in[0]],
                         cache.ports[tg.in[1]], cache.ports[tg.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      const Port p = to.port_of(g, k);
      if (out[k] == cache.ports[p]) {
        continue;
      }
      if (cache.undo_size == cache.undo.size()) {
        cache.undo.emplace_back();
      }
      auto& u = cache.undo[cache.undo_size++];
      u.port = p;
      u.value = std::move(cache.ports[p]);
      cache.ports[p] = std::move(out[k]);
      cache.dirty[p] = 1;
    }
  }
}

} // namespace

void update_sim_cache(const Netlist& from, const Netlist& to,
                      SimCache& cache) {
  check_delta_shape(from, to, cache, "rqfp::update_sim_cache");
  propagate_dirty(from, to, cache);
  // Commit: keep the new values, only clear the dirty marks.
  for (std::size_t i = 0; i < cache.undo_size; ++i) {
    cache.dirty[cache.undo[i].port] = 0;
  }
  cache.undo_size = 0;
}

void simulate_delta(const Netlist& base, const Netlist& child,
                    SimCache& cache, std::vector<tt::TruthTable>& po_out) {
  check_delta_shape(base, child, cache, "rqfp::simulate_delta");
  propagate_dirty(base, child, cache);
  po_out.resize(child.num_pos());
  for (std::uint32_t i = 0; i < child.num_pos(); ++i) {
    po_out[i] = cache.ports[child.po_at(i)];
  }
  // Restore the cache to `base`'s values so it can serve the next sibling.
  for (std::size_t i = 0; i < cache.undo_size; ++i) {
    auto& u = cache.undo[i];
    cache.ports[u.port] = std::move(u.value);
    cache.dirty[u.port] = 0;
  }
  cache.undo_size = 0;
}

void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po,
                       SimBatch& scratch) {
  if (pi.rows() != net.num_pis()) {
    throw std::invalid_argument(
        "rqfp::simulate_patterns: netlist has " +
        std::to_string(net.num_pis()) + " PIs but the batch has " +
        std::to_string(pi.rows()) + " rows");
  }
  const std::size_t words = pi.words();
  scratch.resize(net.first_free_port(), words);
  scratch.fill_row(kConstPort, ~std::uint64_t{0});
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    std::copy(pi.row(i), pi.row(i) + words, scratch.row(1 + i));
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const std::uint64_t* a = scratch.row(gate.in[0]);
    const std::uint64_t* b = scratch.row(gate.in[1]);
    const std::uint64_t* c = scratch.row(gate.in[2]);
    std::uint64_t* o0 = scratch.row(net.port_of(g, 0));
    std::uint64_t* o1 = scratch.row(net.port_of(g, 1));
    std::uint64_t* o2 = scratch.row(net.port_of(g, 2));
    for (std::size_t w = 0; w < words; ++w) {
      const auto out = eval_gate_words(gate.config, a[w], b[w], c[w]);
      o0[w] = out[0];
      o1[w] = out[1];
      o2[w] = out[2];
    }
  }
  po.resize(net.num_pos(), words);
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const std::uint64_t* src = scratch.row(net.po_at(i));
    std::copy(src, src + words, po.row(i));
  }
}

void simulate_patterns(const Netlist& net, const SimBatch& pi, SimBatch& po) {
  SimBatch scratch;
  simulate_patterns(net, pi, po, scratch);
}

std::vector<bool> evaluate(const Netlist& net, std::uint64_t assignment) {
  std::vector<std::uint64_t> port(net.first_free_port(), 0);
  port[kConstPort] = 1;
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port[1 + i] = (assignment >> i) & 1;
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out =
        eval_gate_words(gate.config, port[gate.in[0]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[1]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[2]] ? ~std::uint64_t{0} : 0);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k] & 1;
    }
  }
  std::vector<bool> result;
  result.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    result.push_back(port[net.po_at(i)] != 0);
  }
  return result;
}

} // namespace rcgp::rqfp
