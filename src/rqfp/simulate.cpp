#include "rqfp/simulate.hpp"

#include <stdexcept>

namespace rcgp::rqfp {

std::vector<tt::TruthTable> simulate_ports(const Netlist& net) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("rqfp::simulate: too many PIs");
  }
  std::vector<tt::TruthTable> port(net.first_free_port(),
                                   tt::TruthTable::constant(nv, false));
  port[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    port[1 + i] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out = eval_gate_tables(gate.config, port[gate.in[0]],
                                      port[gate.in[1]], port[gate.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k];
    }
  }
  return port;
}

std::vector<tt::TruthTable> simulate(const Netlist& net) {
  const auto port = simulate_ports(net);
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

std::vector<tt::TruthTable> simulate_live(const Netlist& net) {
  const unsigned nv = net.num_pis();
  if (nv > tt::TruthTable::kMaxVars) {
    throw std::invalid_argument("rqfp::simulate_live: too many PIs");
  }
  const auto live = net.live_gates();
  std::vector<tt::TruthTable> port(net.first_free_port(),
                                   tt::TruthTable::constant(nv, false));
  port[kConstPort] = tt::TruthTable::constant(nv, true);
  for (unsigned i = 0; i < nv; ++i) {
    port[1 + i] = tt::TruthTable::projection(nv, i);
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue;
    }
    const auto& gate = net.gate(g);
    const auto out = eval_gate_tables(gate.config, port[gate.in[0]],
                                      port[gate.in[1]], port[gate.in[2]]);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k];
    }
  }
  std::vector<tt::TruthTable> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> simulate_patterns(
    const Netlist& net,
    const std::vector<std::vector<std::uint64_t>>& pi_patterns) {
  if (pi_patterns.size() != net.num_pis()) {
    throw std::invalid_argument("rqfp::simulate_patterns: PI count mismatch");
  }
  const std::size_t words = pi_patterns.empty() ? 1 : pi_patterns[0].size();
  std::vector<std::vector<std::uint64_t>> port(
      net.first_free_port(), std::vector<std::uint64_t>(words, 0));
  port[kConstPort].assign(words, ~std::uint64_t{0});
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    if (pi_patterns[i].size() != words) {
      throw std::invalid_argument("rqfp::simulate_patterns: ragged patterns");
    }
    port[1 + i] = pi_patterns[i];
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    for (std::size_t w = 0; w < words; ++w) {
      const auto out =
          eval_gate_words(gate.config, port[gate.in[0]][w],
                          port[gate.in[1]][w], port[gate.in[2]][w]);
      for (unsigned k = 0; k < 3; ++k) {
        port[net.port_of(g, k)][w] = out[k];
      }
    }
  }
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    out.push_back(port[net.po_at(i)]);
  }
  return out;
}

std::vector<bool> evaluate(const Netlist& net, std::uint64_t assignment) {
  std::vector<std::uint64_t> port(net.first_free_port(), 0);
  port[kConstPort] = 1;
  for (unsigned i = 0; i < net.num_pis(); ++i) {
    port[1 + i] = (assignment >> i) & 1;
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    const auto& gate = net.gate(g);
    const auto out =
        eval_gate_words(gate.config, port[gate.in[0]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[1]] ? ~std::uint64_t{0} : 0,
                        port[gate.in[2]] ? ~std::uint64_t{0} : 0);
    for (unsigned k = 0; k < 3; ++k) {
      port[net.port_of(g, k)] = out[k] & 1;
    }
  }
  std::vector<bool> result;
  result.reserve(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    result.push_back(port[net.po_at(i)] != 0);
  }
  return result;
}

} // namespace rcgp::rqfp
