#include "rqfp/gate.hpp"

#include <stdexcept>

#include "rqfp/simd.hpp"

namespace rcgp::rqfp {

std::string InvConfig::to_string() const {
  std::string s;
  for (unsigned k = 0; k < 3; ++k) {
    if (k) {
      s.push_back('-');
    }
    for (unsigned i = 0; i < 3; ++i) {
      s.push_back(inverts(k, i) ? '1' : '0');
    }
  }
  return s;
}

InvConfig InvConfig::parse(const std::string& text) {
  if (text.size() != 11 || text[3] != '-' || text[7] != '-') {
    throw std::invalid_argument("InvConfig::parse: expect \"xxx-xxx-xxx\"");
  }
  std::uint16_t bits = 0;
  unsigned slot = 0;
  for (const char c : text) {
    if (c == '-') {
      continue;
    }
    if (c == '1') {
      bits |= 1u << slot;
    } else if (c != '0') {
      throw std::invalid_argument("InvConfig::parse: invalid character");
    }
    ++slot;
  }
  return InvConfig(bits);
}

std::array<std::uint64_t, 3> eval_gate_words(InvConfig config,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c) {
  std::array<std::uint64_t, 3> out{};
  const std::uint64_t in[3] = {a, b, c};
  for (unsigned k = 0; k < 3; ++k) {
    std::uint64_t v[3];
    for (unsigned i = 0; i < 3; ++i) {
      v[i] = config.inverts(k, i) ? ~in[i] : in[i];
    }
    out[k] = (v[0] & v[1]) | (v[0] & v[2]) | (v[1] & v[2]);
  }
  return out;
}

void eval_gate_tables_into(InvConfig config, const tt::TruthTable& a,
                           const tt::TruthTable& b, const tt::TruthTable& c,
                           tt::TruthTable& o0, tt::TruthTable& o1,
                           tt::TruthTable& o2) {
  if (a.num_vars() != b.num_vars() || a.num_vars() != c.num_vars()) {
    throw std::invalid_argument("eval_gate_tables: operand arity mismatch");
  }
  tt::TruthTable* const out[3] = {&o0, &o1, &o2};
  for (tt::TruthTable* t : out) {
    // A moved-from table keeps its arity but loses its words, so check both.
    if (t->num_vars() != a.num_vars() || t->num_words() != a.num_words()) {
      *t = tt::TruthTable(a.num_vars());
    }
  }
  simd::kernels().gate3(config.bits(), a.data(), b.data(), c.data(),
                        o0.data(), o1.data(), o2.data(), a.num_words());
  for (tt::TruthTable* t : out) {
    // Inversion masks flip the unused high bits of sub-word tables.
    t->normalize();
  }
}

std::array<tt::TruthTable, 3> eval_gate_tables(InvConfig config,
                                               const tt::TruthTable& a,
                                               const tt::TruthTable& b,
                                               const tt::TruthTable& c) {
  std::array<tt::TruthTable, 3> out;
  eval_gate_tables_into(config, a, b, c, out[0], out[1], out[2]);
  return out;
}

} // namespace rcgp::rqfp
