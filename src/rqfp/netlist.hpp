#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rqfp/gate.hpp"

namespace rcgp::rqfp {

/// Port index space of an RQFP netlist (matches the paper's CGP encoding,
/// Fig. 3): port 0 is the constant-1 input; ports 1..n_pi are the primary
/// inputs; gate g's output k is port n_pi + 1 + 3*g + k.
using Port = std::uint32_t;

inline constexpr Port kConstPort = 0;

/// Feed-forward netlist of RQFP logic gates.
///
/// Invariants (checked by `validate`):
///  * every gate input references the constant port, a PI port, or an
///    output port of a *preceding* gate (feed-forward / acyclic);
///  * single fan-out: every non-constant port is consumed at most once,
///    counting both gate inputs and primary-output bindings (constant-1 has
///    unlimited fan-out: it is supplied by the excitation current).
class Netlist {
public:
  struct Gate {
    std::array<Port, 3> in{kConstPort, kConstPort, kConstPort};
    InvConfig config;

    bool operator==(const Gate&) const = default;
  };

  Netlist() = default;
  explicit Netlist(unsigned num_pis) : num_pis_(num_pis) {}

  unsigned num_pis() const { return num_pis_; }
  unsigned num_pos() const { return static_cast<unsigned>(pos_.size()); }
  unsigned num_gates() const { return static_cast<unsigned>(gates_.size()); }

  /// Appends a gate; inputs must already exist. Returns the gate index.
  std::uint32_t add_gate(const std::array<Port, 3>& inputs, InvConfig config);
  std::uint32_t add_po(Port p, const std::string& name = "");
  void set_po(std::uint32_t index, Port p) { pos_[index] = p; }

  const Gate& gate(std::uint32_t g) const { return gates_[g]; }
  Gate& gate(std::uint32_t g) { return gates_[g]; }
  Port po_at(std::uint32_t i) const { return pos_[i]; }
  const std::string& po_name(std::uint32_t i) const { return po_names_[i]; }
  void set_pi_names(std::vector<std::string> names) {
    pi_names_ = std::move(names);
  }
  const std::string& pi_name(std::uint32_t i) const { return pi_names_[i]; }
  bool has_pi_names() const { return !pi_names_.empty(); }

  // ---- port arithmetic ----
  bool is_const_port(Port p) const { return p == kConstPort; }
  bool is_pi_port(Port p) const { return p >= 1 && p <= num_pis_; }
  bool is_gate_port(Port p) const { return p > num_pis_; }
  std::uint32_t gate_of_port(Port p) const {
    return (p - num_pis_ - 1) / 3;
  }
  unsigned slot_of_port(Port p) const { return (p - num_pis_ - 1) % 3; }
  Port port_of(std::uint32_t gate, unsigned output) const {
    return num_pis_ + 1 + 3 * gate + output;
  }
  Port first_free_port() const { return port_of(num_gates(), 0); }
  /// PI index (0-based) of a PI port.
  unsigned pi_of_port(Port p) const { return p - 1; }

  /// Number of consumers of each port (gate inputs + PO bindings); index =
  /// port number.
  std::vector<std::uint32_t> port_fanout() const;

  /// Empty string when valid, otherwise a description of the first
  /// violated invariant.
  std::string validate() const;

  /// Gate output ports consumed by no gate input and no PO: the garbage
  /// outputs n_g of the paper.
  std::uint32_t count_garbage_outputs() const;

  /// ASAP clock level of each gate (PIs and constant at level 0; a gate is
  /// one level after its latest input).
  std::vector<std::uint32_t> gate_levels() const;
  /// Allocation-free variant: writes the levels into `out`, reusing its
  /// capacity (the cost hot path calls this once per evaluation).
  void gate_levels(std::vector<std::uint32_t>& out) const;
  /// Circuit depth n_d = latest PO driver level (0 if no gate drives POs).
  std::uint32_t depth() const;
  /// Depth from precomputed gate levels (as returned by `gate_levels`), so
  /// callers that already hold the level vector skip the recomputation.
  std::uint32_t depth(std::span<const std::uint32_t> level) const;

  bool operator==(const Netlist&) const = default;

  /// Gates that are transitively useless (no output reaches a PO through
  /// consumed edges) — the nodes the paper's "shrink" step removes.
  std::vector<bool> live_gates() const;

  /// Copy with dead gates removed and ports renumbered. PO bindings and
  /// names are preserved.
  Netlist remove_dead_gates() const;

private:
  unsigned num_pis_ = 0;
  std::vector<Gate> gates_;
  std::vector<Port> pos_;
  std::vector<std::string> po_names_;
  std::vector<std::string> pi_names_;
};

} // namespace rcgp::rqfp
