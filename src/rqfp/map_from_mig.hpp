#pragma once

#include "mig/mig.hpp"
#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

struct MapStats {
  std::uint32_t logic_gates = 0;
  std::uint32_t inverter_gates = 0; // extra gates for complemented POs
  std::uint32_t packed_nodes = 0;   // nodes sharing another node's gate
};

struct MapOptions {
  /// Extension beyond the paper's direct conversion: MIG nodes with the
  /// same three fanins can share one RQFP gate, each taking one majority
  /// row (an RQFP gate computes three independent phased majorities of
  /// the same inputs). Off by default to match the paper's
  /// initialization baseline.
  bool pack_shared_fanins = false;
};

/// Direct conversion of a MIG into an RQFP netlist (the paper's
/// "RQFP logic netlist conversion" box in Fig. 2).
///
/// Every majority node becomes one RQFP gate whose output 2 carries the
/// node function M(a^c0, b^c1, c^c2) (fanin complements absorbed into the
/// inverter configuration); outputs 0 and 1 follow the normal reversible
/// gate pattern and are typically garbage until the CGP stage learns to
/// use them. The result may violate the single fan-out limitation — run
/// insert_splitters() on it to legalize (paper: "RQFP splitter insertion").
///
/// Complemented PO drivers are absorbed into the producing gate's row when
/// the PO is that port's only consumer; otherwise a dedicated inverter
/// gate (a splitter with an inverting row) is appended.
Netlist map_from_mig(const mig::Mig& input, MapStats* stats = nullptr,
                     const MapOptions& options = {});

} // namespace rcgp::rqfp
