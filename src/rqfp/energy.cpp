#include "rqfp/energy.hpp"

#include <cmath>

namespace rcgp::rqfp {

double landauer_limit(double temperature_kelvin) {
  return kBoltzmann * temperature_kelvin * std::log(2.0);
}

EnergyEstimate estimate_energy(const Netlist& net, double temperature_kelvin,
                               double per_jj_fraction) {
  EnergyEstimate e;
  e.temperature_kelvin = temperature_kelvin;
  e.landauer_per_bit = landauer_limit(temperature_kelvin);
  const auto report = analyze_reversibility(net);
  e.erased_bits = report.erased_bits;
  e.landauer_floor = e.erased_bits * e.landauer_per_bit;
  const auto cost = cost_of(net);
  e.jjs = cost.jjs;
  e.switching_estimate = cost.jjs * per_jj_fraction * kIcPhi0;
  return e;
}

} // namespace rcgp::rqfp
