#include "rqfp/buffer.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace rcgp::rqfp {

namespace {

const char* schedule_name(BufferSchedule s) {
  switch (s) {
  case BufferSchedule::kAsap:
    return "asap";
  case BufferSchedule::kAlap:
    return "alap";
  case BufferSchedule::kBest:
    return "best";
  case BufferSchedule::kOptimized:
    return "optimized";
  }
  return "?";
}

/// True when gate g participates in the schedule. A null mask means every
/// gate does (the historical plan_buffers semantics for raw netlists).
inline bool is_live(const std::uint8_t* live, std::uint32_t g) {
  return live == nullptr || live[g] != 0;
}

/// Buffer plan for an explicit level assignment (must satisfy the
/// one-stage-ahead constraints).
BufferPlan plan_for_levels(const Netlist& net,
                           const std::vector<std::uint32_t>& level,
                           std::uint32_t depth) {
  BufferPlan plan;
  plan.depth = depth;
  plan.gate_edges.assign(net.num_gates(), {0, 0, 0});
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      const Port p = net.gate(g).in[i];
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src =
          net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
      plan.gate_edges[g][i] = level[g] - 1 - src;
      plan.total += plan.gate_edges[g][i];
    }
  }
  plan.po_edges.assign(net.num_pos(), 0);
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src =
        net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
    plan.po_edges[o] = depth - src;
    plan.total += plan.po_edges[o];
  }
  return plan;
}

} // namespace

std::uint32_t BufferScheduler::total_for(
    const Netlist& net, const std::uint8_t* live,
    const std::vector<std::uint32_t>& level, std::uint32_t depth) const {
  std::uint32_t total = 0;
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!is_live(live, g)) {
      continue;
    }
    for (const Port p : net.gate(g).in) {
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src =
          net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
      total += level[g] - 1 - src;
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src =
        net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
    total += depth - src;
  }
  return total;
}

void BufferScheduler::alap_levels(const Netlist& net,
                                  const std::uint8_t* live,
                                  const std::vector<std::uint32_t>& level,
                                  std::uint32_t depth) {
  const std::uint32_t n = net.num_gates();
  latest_.assign(n, 0);
  constrained_.assign(n, 0);
  alap_.resize(n);
  if (n == 0) {
    return;
  }
  // Latest stage each gate may occupy: one before its earliest consumer;
  // PO drivers may sit at the final stage.
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const Port p = net.po_at(i);
    if (net.is_gate_port(p)) {
      const std::uint32_t g = net.gate_of_port(p);
      latest_[g] = constrained_[g] ? std::min(latest_[g], depth) : depth;
      constrained_[g] = 1;
    }
  }
  for (std::uint32_t g = n; g-- > 0;) {
    if (!is_live(live, g)) {
      continue; // dead gates constrain nothing under a mask
    }
    const std::uint32_t self =
        constrained_[g] ? latest_[g] : level[g]; // dead gates keep ASAP
    for (const Port p : net.gate(g).in) {
      if (!net.is_gate_port(p)) {
        continue;
      }
      const std::uint32_t src = net.gate_of_port(p);
      const std::uint32_t bound = self - 1;
      latest_[src] = constrained_[src] ? std::min(latest_[src], bound) : bound;
      constrained_[src] = 1;
    }
  }
  for (std::uint32_t g = 0; g < n; ++g) {
    // Slack is non-negative for live gates, so the latest stage is never
    // earlier than ASAP; unconstrained (dead) gates keep their ASAP level.
    alap_[g] = constrained_[g] ? std::max(level[g], latest_[g]) : level[g];
  }
}

std::uint32_t BufferScheduler::alap_total(
    const Netlist& net, const std::uint8_t* live,
    const std::vector<std::uint32_t>& level, std::uint32_t depth) {
  const std::uint32_t n = net.num_gates();
  latest_.assign(n, 0);
  constrained_.assign(n, 0);
  alap_.resize(n);
  std::uint32_t total = 0;
  if (n == 0) {
    for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
      if (!net.is_const_port(net.po_at(o))) {
        total += depth; // PI-bound POs buffer down from stage 0
      }
    }
    return total;
  }
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const Port p = net.po_at(i);
    if (net.is_gate_port(p)) {
      const std::uint32_t g = net.gate_of_port(p);
      latest_[g] = constrained_[g] ? std::min(latest_[g], depth) : depth;
      constrained_[g] = 1;
    }
  }
  for (std::uint32_t g = n; g-- > 0;) {
    if (!is_live(live, g)) {
      continue;
    }
    const std::uint32_t self = constrained_[g] ? latest_[g] : level[g];
    for (const Port p : net.gate(g).in) {
      if (!net.is_gate_port(p)) {
        continue;
      }
      const std::uint32_t src = net.gate_of_port(p);
      const std::uint32_t bound = self - 1;
      latest_[src] = constrained_[src] ? std::min(latest_[src], bound) : bound;
      constrained_[src] = 1;
    }
  }
  // Final levels and the buffer total in one ascending pass: feed-forward
  // ordering makes each gate's sources final before the gate is priced.
  for (std::uint32_t g = 0; g < n; ++g) {
    alap_[g] = constrained_[g] ? std::max(level[g], latest_[g]) : level[g];
    if (!is_live(live, g)) {
      continue;
    }
    for (const Port p : net.gate(g).in) {
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src =
          net.is_gate_port(p) ? alap_[net.gate_of_port(p)] : 0;
      total += alap_[g] - 1 - src;
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src =
        net.is_gate_port(p) ? alap_[net.gate_of_port(p)] : 0;
    total += depth - src;
  }
  return total;
}

void BufferScheduler::build_consumers(const Netlist& net,
                                      const std::uint8_t* live) {
  const std::uint32_t n = net.num_gates();
  consumer_off_.assign(n + 1, 0);
  po_fanin_.assign(n, 0);
  slope_.assign(n, 0); // accumulates non-constant input counts first
  for (std::uint32_t g = 0; g < n; ++g) {
    if (!is_live(live, g)) {
      continue; // a live gate may feed a dead one; that edge is unpriced
    }
    for (const Port p : net.gate(g).in) {
      if (!net.is_const_port(p)) {
        ++slope_[g];
      }
      if (net.is_gate_port(p)) {
        ++consumer_off_[net.gate_of_port(p) + 1];
      }
    }
  }
  for (std::uint32_t g = 0; g < n; ++g) {
    consumer_off_[g + 1] += consumer_off_[g];
  }
  consumers_.resize(consumer_off_[n]);
  cursor_.assign(consumer_off_.begin(), consumer_off_.end() - 1);
  for (std::uint32_t g = 0; g < n; ++g) {
    if (!is_live(live, g)) {
      continue;
    }
    for (const Port p : net.gate(g).in) {
      if (net.is_gate_port(p)) {
        consumers_[cursor_[net.gate_of_port(p)]++] = g;
      }
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_gate_port(p)) {
      ++po_fanin_[net.gate_of_port(p)];
    }
  }
  // Descent cost slope: +1 per non-constant input per stage later, -1 per
  // consumer edge and per bound PO. Invariant across descent rounds, so it
  // is computed once here rather than per evaluation.
  for (std::uint32_t g = 0; g < n; ++g) {
    slope_[g] -= static_cast<std::int32_t>(consumer_off_[g + 1] -
                                           consumer_off_[g]) +
                 static_cast<std::int32_t>(po_fanin_[g]);
  }
}

std::int64_t BufferScheduler::optimized_levels(
    const Netlist& net, const std::uint8_t* live,
    const std::vector<std::uint32_t>& level, std::uint32_t depth) {
  const std::uint32_t n = net.num_gates();
  opt_.assign(level.begin(), level.end()); // ASAP start
  // Coordinate descent: each gate moves within [earliest, latest] given
  // its neighbours' current levels; the incident-buffer cost is linear in
  // the gate's level (coefficient slope_), so the optimum is at one of the
  // two bounds, and each accepted move shifts the buffer total by exactly
  // slope_ * (target - current) — accumulated below instead of re-priced.
  //
  // An evaluation is a guaranteed no-op when no neighbour moved since the
  // gate was last evaluated (same bounds, same precomputed slope, same
  // decision), and slope-0 gates never move at all — both are skipped
  // outright. From an ASAP start a slope>0 gate's target *is* its current
  // level (earliest == ASAP), so only slope<0 gates seed the dirty set.
  // The ascending in-round order over the remaining gates is the
  // historical one, so the produced levels are bit-identical.
  std::int64_t total_delta = 0;
  dirty_.resize(n);
  for (std::uint32_t g = 0; g < n; ++g) {
    dirty_[g] = slope_[g] < 0 ? 1 : 0;
  }
  for (unsigned round = 0; round < 16; ++round) {
    bool changed = false;
    for (std::uint32_t g = 0; g < n; ++g) {
      if (!dirty_[g] || slope_[g] == 0 || !is_live(live, g)) {
        continue;
      }
      dirty_[g] = 0;
      std::uint32_t earliest = 1;
      for (const Port p : net.gate(g).in) {
        // PI and constant ports pin nothing beyond stage 1.
        if (net.is_gate_port(p)) {
          earliest = std::max(earliest, opt_[net.gate_of_port(p)] + 1);
        }
      }
      const std::uint32_t ncons = consumer_off_[g + 1] - consumer_off_[g];
      std::uint32_t latest =
          po_fanin_[g] > 0 || ncons == 0 ? depth : 0xFFFFFFFFu;
      for (std::uint32_t i = consumer_off_[g]; i < consumer_off_[g + 1];
           ++i) {
        latest = std::min(latest, opt_[consumers_[i]] - 1);
      }
      const std::uint32_t target = slope_[g] > 0 ? earliest : latest;
      if (target != opt_[g] && target >= earliest && target <= latest) {
        total_delta += static_cast<std::int64_t>(slope_[g]) *
                       (static_cast<std::int64_t>(target) -
                        static_cast<std::int64_t>(opt_[g]));
        opt_[g] = target;
        changed = true;
        // Only this gate's producers and consumers see different bounds
        // from here on.
        for (const Port p : net.gate(g).in) {
          if (net.is_gate_port(p)) {
            dirty_[net.gate_of_port(p)] = 1;
          }
        }
        for (std::uint32_t i = consumer_off_[g]; i < consumer_off_[g + 1];
             ++i) {
          dirty_[consumers_[i]] = 1;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  return total_delta;
}

BufferPlan BufferScheduler::plan(const Netlist& net, BufferSchedule schedule) {
  obs::Span span("buffer.plan");
  span.arg("schedule", schedule_name(schedule))
      .arg("gates", net.num_gates());
  net.gate_levels(asap_);
  const std::uint32_t depth = net.depth(asap_);
  switch (schedule) {
  case BufferSchedule::kAsap:
    return plan_for_levels(net, asap_, depth);
  case BufferSchedule::kAlap:
    alap_levels(net, nullptr, asap_, depth);
    return plan_for_levels(net, alap_, depth);
  case BufferSchedule::kBest: {
    const std::uint32_t asap_total = total_for(net, nullptr, asap_, depth);
    alap_levels(net, nullptr, asap_, depth);
    const std::uint32_t alap_total = total_for(net, nullptr, alap_, depth);
    // Tie-break: ASAP wins ties (strict `<`), as plan_buffers always has.
    return plan_for_levels(net, alap_total < asap_total ? alap_ : asap_,
                           depth);
  }
  case BufferSchedule::kOptimized:
    break;
  }
  // kOptimized: the ALAP bounds, consumer CSR, and PO-fanin counts are
  // each built once and shared between the kBest baseline and the
  // coordinate-descent pass.
  const std::uint32_t asap_total = total_for(net, nullptr, asap_, depth);
  alap_levels(net, nullptr, asap_, depth);
  const std::uint32_t alap_total = total_for(net, nullptr, alap_, depth);
  const std::vector<std::uint32_t>& best_lv =
      alap_total < asap_total ? alap_ : asap_;
  const std::uint32_t best_total = std::min(asap_total, alap_total);
  build_consumers(net, nullptr);
  const std::int64_t descent_delta = optimized_levels(net, nullptr, asap_, depth);
  const std::uint32_t opt_total =
      static_cast<std::uint32_t>(asap_total + descent_delta);
  return plan_for_levels(net, opt_total < best_total ? opt_ : best_lv, depth);
}

std::uint32_t BufferScheduler::masked_total(
    const Netlist& net, const std::vector<std::uint8_t>& live,
    const std::vector<std::uint32_t>& level, std::uint32_t depth,
    BufferSchedule schedule) {
  const std::uint8_t* mask = live.data();
  switch (schedule) {
  case BufferSchedule::kAsap:
    return total_for(net, mask, level, depth);
  case BufferSchedule::kAlap:
    return alap_total(net, mask, level, depth);
  case BufferSchedule::kBest:
    return std::min(total_for(net, mask, level, depth),
                    alap_total(net, mask, level, depth));
  case BufferSchedule::kOptimized:
    break;
  }
  const std::uint32_t asap_t = total_for(net, mask, level, depth);
  const std::uint32_t alap_t = alap_total(net, mask, level, depth);
  build_consumers(net, mask);
  const std::uint32_t opt_t = static_cast<std::uint32_t>(
      asap_t + optimized_levels(net, mask, level, depth));
  return std::min(opt_t, std::min(asap_t, alap_t));
}

std::size_t BufferScheduler::scratch_bytes() const {
  return (asap_.capacity() + alap_.capacity() + opt_.capacity() +
          latest_.capacity() + consumer_off_.capacity() +
          consumers_.capacity() + cursor_.capacity() + po_fanin_.capacity()) *
             sizeof(std::uint32_t) +
         slope_.capacity() * sizeof(std::int32_t) +
         (constrained_.capacity() + dirty_.capacity()) * sizeof(std::uint8_t);
}

BufferPlan plan_buffers(const Netlist& net, BufferSchedule schedule) {
  BufferScheduler scheduler;
  return scheduler.plan(net, schedule);
}

std::uint32_t count_buffers(const Netlist& net, BufferSchedule schedule) {
  return plan_buffers(net, schedule).total;
}

} // namespace rcgp::rqfp
