#include "rqfp/buffer.hpp"

#include <algorithm>

namespace rcgp::rqfp {

namespace {

/// Buffer total for an explicit level assignment (must satisfy the
/// one-stage-ahead constraints).
BufferPlan plan_for_levels(const Netlist& net,
                           const std::vector<std::uint32_t>& level,
                           std::uint32_t depth) {
  BufferPlan plan;
  plan.depth = depth;
  plan.gate_edges.assign(net.num_gates(), {0, 0, 0});
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      const Port p = net.gate(g).in[i];
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src =
          net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
      plan.gate_edges[g][i] = level[g] - 1 - src;
      plan.total += plan.gate_edges[g][i];
    }
  }
  plan.po_edges.assign(net.num_pos(), 0);
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src =
        net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
    plan.po_edges[o] = depth - src;
    plan.total += plan.po_edges[o];
  }
  return plan;
}

BufferPlan plan_optimized(const Netlist& net) {
  const std::uint32_t n = net.num_gates();
  std::vector<std::uint32_t> level = net.gate_levels(); // ASAP start
  const std::uint32_t depth = net.depth();
  if (n == 0) {
    return plan_for_levels(net, level, depth);
  }

  // Consumers of each gate: (consumer gate, fixed PO flag).
  std::vector<std::vector<std::uint32_t>> gate_consumers(n);
  std::vector<bool> drives_po(n, false);
  for (std::uint32_t g = 0; g < n; ++g) {
    for (const Port p : net.gate(g).in) {
      if (net.is_gate_port(p)) {
        gate_consumers[net.gate_of_port(p)].push_back(g);
      }
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_gate_port(p)) {
      drives_po[net.gate_of_port(p)] = true;
    }
  }

  // Coordinate descent: each gate moves within [earliest, latest] given
  // its neighbours' current levels; the incident-buffer cost is linear in
  // the gate's level, so the optimum is at one of the two bounds.
  for (unsigned round = 0; round < 16; ++round) {
    bool changed = false;
    for (std::uint32_t g = 0; g < n; ++g) {
      std::uint32_t earliest = 1;
      int non_const_inputs = 0;
      for (const Port p : net.gate(g).in) {
        if (net.is_const_port(p)) {
          continue;
        }
        ++non_const_inputs;
        const std::uint32_t src =
            net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
        earliest = std::max(earliest, src + 1);
      }
      std::uint32_t latest = drives_po[g] || gate_consumers[g].empty()
                                 ? depth
                                 : 0xFFFFFFFFu;
      for (const auto c : gate_consumers[g]) {
        latest = std::min(latest, level[c] - 1);
      }
      // Cost slope: +non_const_inputs per stage later on input edges,
      // -consumer count per stage later on output edges (PO edges count
      // once each as well, folded into drives_po handling below).
      int slope = non_const_inputs;
      slope -= static_cast<int>(gate_consumers[g].size());
      if (drives_po[g]) {
        // Each PO bound to this gate saves one buffer per stage later.
        for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
          if (net.is_gate_port(net.po_at(o)) &&
              net.gate_of_port(net.po_at(o)) == g) {
            --slope;
          }
        }
      }
      const std::uint32_t target = slope > 0 ? earliest
                                   : slope < 0 ? latest
                                               : level[g];
      if (target != level[g] && target >= earliest && target <= latest) {
        level[g] = target;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return plan_for_levels(net, level, depth);
}

} // namespace

BufferPlan plan_buffers(const Netlist& net, BufferSchedule schedule) {
  if (schedule == BufferSchedule::kBest) {
    BufferPlan asap = plan_buffers(net, BufferSchedule::kAsap);
    BufferPlan alap = plan_buffers(net, BufferSchedule::kAlap);
    return alap.total < asap.total ? alap : asap;
  }
  if (schedule == BufferSchedule::kOptimized) {
    BufferPlan best = plan_buffers(net, BufferSchedule::kBest);
    BufferPlan optimized = plan_optimized(net);
    return optimized.total < best.total ? optimized : best;
  }
  BufferPlan plan;
  const std::uint32_t n = net.num_gates();
  std::vector<std::uint32_t> level = net.gate_levels();
  plan.depth = net.depth();

  if (schedule == BufferSchedule::kAlap && n > 0) {
    // Latest stage each gate may occupy: one before its earliest consumer;
    // PO drivers may sit at the final stage.
    std::vector<std::uint32_t> latest(n, 0);
    std::vector<bool> constrained(n, false);
    for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
      const Port p = net.po_at(i);
      if (net.is_gate_port(p)) {
        const std::uint32_t g = net.gate_of_port(p);
        latest[g] = constrained[g] ? std::min(latest[g], plan.depth)
                                   : plan.depth;
        constrained[g] = true;
      }
    }
    for (std::uint32_t g = n; g-- > 0;) {
      const std::uint32_t self =
          constrained[g] ? latest[g] : level[g]; // dead gates keep ASAP
      for (const Port p : net.gate(g).in) {
        if (!net.is_gate_port(p)) {
          continue;
        }
        const std::uint32_t src = net.gate_of_port(p);
        const std::uint32_t bound = self - 1;
        latest[src] =
            constrained[src] ? std::min(latest[src], bound) : bound;
        constrained[src] = true;
      }
    }
    for (std::uint32_t g = 0; g < n; ++g) {
      // Slack is non-negative for live gates, so the latest stage is never
      // earlier than ASAP; dead gates keep their ASAP level.
      if (constrained[g]) {
        level[g] = std::max(level[g], latest[g]);
      }
    }
  }

  plan.gate_edges.assign(n, {0, 0, 0});
  for (std::uint32_t g = 0; g < n; ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      const Port p = net.gate(g).in[i];
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src_level =
          net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
      const std::uint32_t need = level[g] - 1;
      plan.gate_edges[g][i] = need - src_level;
      plan.total += plan.gate_edges[g][i];
    }
  }

  plan.po_edges.assign(net.num_pos(), 0);
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    const Port p = net.po_at(i);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src_level =
        net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
    plan.po_edges[i] = plan.depth - src_level;
    plan.total += plan.po_edges[i];
  }
  return plan;
}

std::uint32_t count_buffers(const Netlist& net, BufferSchedule schedule) {
  return plan_buffers(net, schedule).total;
}

} // namespace rcgp::rqfp
