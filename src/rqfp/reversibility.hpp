#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rqfp/netlist.hpp"

namespace rcgp::rqfp {

/// Information-preservation analysis — the paper's motivation (§1): energy
/// dissipation follows from erased information, and garbage outputs exist
/// precisely to keep circuits logically reversible.
struct ReversibilityReport {
  /// True iff the map PI assignment -> (PO values, garbage-output values)
  /// is injective, i.e. the circuit erases no information at its boundary.
  bool information_preserving = false;
  /// A pair of distinct inputs with identical boundary outputs (when not
  /// information preserving).
  std::optional<std::pair<std::uint64_t, std::uint64_t>> collision;
  /// Number of distinct boundary-output images.
  std::uint64_t image_size = 0;
  /// Bits of information erased: n_pi - log2(image_size), >= 0.
  double erased_bits = 0.0;
  std::uint32_t boundary_outputs = 0; // POs + garbage ports
};

/// Analyzes the live subnetwork of `net` exhaustively over its PIs
/// (requires num_pis() <= tt::TruthTable::kMaxVars).
ReversibilityReport analyze_reversibility(const Netlist& net);

/// True iff the single gate (inputs -> three outputs) with the given
/// inverter configuration is a bijection on 3 bits. The normal reversible
/// configuration of Fig. 1(a) satisfies this; most of the 512 extended
/// configurations do not.
bool gate_is_bijective(InvConfig config);

/// Number of the 512 configurations that are bijective.
unsigned count_bijective_configs();

} // namespace rcgp::rqfp
