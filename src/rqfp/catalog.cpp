#include "rqfp/catalog.hpp"

#include <set>
#include <string>

#include "rqfp/reversibility.hpp"

namespace rcgp::rqfp {

tt::TruthTable ConfigCatalog::row_function(unsigned row_bits) {
  auto in = [&](unsigned i) {
    const auto p = tt::TruthTable::projection(3, i);
    return (row_bits >> i) & 1 ? ~p : p;
  };
  return tt::TruthTable::majority(in(0), in(1), in(2));
}

ConfigCatalog::ConfigCatalog() {
  std::set<tt::TruthTable> rows;
  for (unsigned bits = 0; bits < 8; ++bits) {
    rows.insert(row_function(bits));
  }
  row_functions_.assign(rows.begin(), rows.end());

  std::set<std::string> triples;
  for (unsigned bits = 0; bits < 512; ++bits) {
    const InvConfig cfg(static_cast<std::uint16_t>(bits));
    std::string key;
    for (unsigned k = 0; k < 3; ++k) {
      key += row_function(cfg.row(k)).to_hex();
    }
    triples.insert(key);
    if (gate_is_bijective(cfg)) {
      ++num_bijective_;
    }
  }
  num_triples_ = triples.size();
}

std::optional<unsigned> ConfigCatalog::row_for(const tt::TruthTable& f) {
  if (f.num_vars() != 3) {
    return std::nullopt;
  }
  for (unsigned bits = 0; bits < 8; ++bits) {
    if (row_function(bits) == f) {
      return bits;
    }
  }
  return std::nullopt;
}

std::optional<InvConfig> ConfigCatalog::config_for(const tt::TruthTable& y0,
                                                   const tt::TruthTable& y1,
                                                   const tt::TruthTable& y2) {
  const auto r0 = row_for(y0);
  const auto r1 = row_for(y1);
  const auto r2 = row_for(y2);
  if (!r0 || !r1 || !r2) {
    return std::nullopt;
  }
  return InvConfig::from_rows(*r0, *r1, *r2);
}

} // namespace rcgp::rqfp
