#include "rqfp/cost.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace rcgp::rqfp {

namespace {

obs::Counter& cost_full_recomputes() {
  static obs::Counter& c =
      obs::registry().counter("evolve.cost.full_recomputes");
  return c;
}
obs::Counter& cost_delta_updates() {
  static obs::Counter& c =
      obs::registry().counter("evolve.cost.delta_updates");
  return c;
}
obs::Gauge& cost_scratch_bytes() {
  static obs::Gauge& g = obs::registry().gauge("evolve.cost.scratch_bytes");
  return g;
}

/// In-place liveness marking: the zero-copy replacement for
/// remove_dead_gates(). A gate is live when one of its outputs reaches a
/// PO through consumed edges. Returns the live-gate count (n_r).
std::uint32_t mark_live(const Netlist& net, std::vector<std::uint8_t>& live,
                        std::vector<std::uint32_t>& stack) {
  live.assign(net.num_gates(), 0);
  stack.clear();
  std::uint32_t n_live = 0;
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_gate_port(p)) {
      const std::uint32_t g = net.gate_of_port(p);
      if (!live[g]) {
        live[g] = 1;
        ++n_live;
        stack.push_back(g);
      }
    }
  }
  while (!stack.empty()) {
    const std::uint32_t g = stack.back();
    stack.pop_back();
    for (const Port p : net.gate(g).in) {
      if (net.is_gate_port(p)) {
        const std::uint32_t src = net.gate_of_port(p);
        if (!live[src]) {
          live[src] = 1;
          ++n_live;
          stack.push_back(src);
        }
      }
    }
  }
  return n_live;
}

/// Cost of the live subnetwork of `net` given its mask and ASAP levels.
/// Matches cost_of on remove_dead_gates(): live gates read only live
/// inputs, so their levels, garbage counts, and buffer edges coincide
/// with the dead-gate-free copy's.
Cost measure_masked(const Netlist& net, const std::vector<std::uint8_t>& live,
                    const std::vector<std::uint32_t>& level,
                    std::uint32_t n_live, BufferSchedule schedule,
                    CostCache& cache) {
  Cost c;
  c.n_d = net.depth(level); // PO drivers are live by construction
  c.n_r = n_live;
  cache.fanout.assign(net.first_free_port(), 0);
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue; // edges into dead gates do not consume live outputs
    }
    for (const Port p : net.gate(g).in) {
      ++cache.fanout[p];
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    ++cache.fanout[net.po_at(o)];
  }
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    if (!live[g]) {
      continue;
    }
    for (unsigned k = 0; k < 3; ++k) {
      if (cache.fanout[net.port_of(g, k)] == 0) {
        ++c.n_g;
      }
    }
  }
  c.n_b = cache.scheduler.masked_total(net, live, level, c.n_d, schedule);
  c.jjs = kJjsPerGate * c.n_r + kJjsPerBuffer * c.n_b;
  return c;
}

void check_delta_shapes(const Netlist& base, const Netlist& child,
                        const CostCache& cache) {
  if (!cache.valid) {
    throw std::invalid_argument(
        "rqfp::cost_of_delta: cache not built (call build_cost_cache)");
  }
  if (cache.num_pis != base.num_pis() ||
      cache.num_gates != base.num_gates() ||
      cache.num_pos != base.num_pos()) {
    throw std::invalid_argument(
        "rqfp::cost_of_delta: cache shape does not match base netlist");
  }
  if (base.num_pis() != child.num_pis() ||
      base.num_gates() != child.num_gates() ||
      base.num_pos() != child.num_pos()) {
    throw std::invalid_argument(
        "rqfp::cost_of_delta: base/child shape mismatch (CGP mutation "
        "preserves PI/gate/PO counts)");
  }
}

/// Shared delta engine. `first_topo` is the lowest gate index whose
/// inputs changed (num_gates when none did) and `live_changed` whether
/// any such gate is live in the base; `commit` swaps the child's
/// analysis in as the cache's new base state.
Cost delta_impl(const Netlist& base, const Netlist& child,
                std::uint32_t first_topo, bool live_changed, CostCache& cache,
                bool commit) {
  const std::uint32_t n = base.num_gates();
  bool po_changed = false;
  for (std::uint32_t o = 0; o < base.num_pos(); ++o) {
    if (base.po_at(o) != child.po_at(o)) {
      po_changed = true;
      break;
    }
  }
  if (!live_changed && !po_changed) {
    // Inverter-config-only mutation (cost is topology-only), or a dirty
    // cone confined to dead gates: rewiring a dead gate's inputs cannot
    // change the liveness mask (liveness flows from POs through live
    // consumers only) nor any live edge, so the cached cost stands — the
    // CGP neutral-drift case.
    cost_delta_updates().inc();
    if (commit && first_topo < n) {
      // Keep the cached levels correct for *every* gate: a later mutation
      // may revive a gate from this dead cone, and the next delta's level
      // prefix reuse assumes the whole vector describes the base. The
      // in-place forward sweep is safe — inputs precede their gate.
      for (std::uint32_t g = first_topo; g < n; ++g) {
        std::uint32_t m = 0;
        for (const Port p : child.gate(g).in) {
          if (child.is_gate_port(p)) {
            m = std::max(m, cache.level[child.gate_of_port(p)]);
          }
        }
        cache.level[g] = m + 1;
      }
    }
    return cache.base_cost;
  }

  const std::uint32_t n_live = mark_live(child, cache.child_live, cache.stack);
  // Delta level maintenance: feed-forward ordering means ASAP levels
  // before the first input change are unchanged; only the suffix is
  // recomputed.
  cache.child_level.resize(n);
  std::copy(cache.level.begin(), cache.level.begin() + first_topo,
            cache.child_level.begin());
  for (std::uint32_t g = first_topo; g < n; ++g) {
    std::uint32_t m = 0;
    for (const Port p : child.gate(g).in) {
      if (child.is_gate_port(p)) {
        m = std::max(m, cache.child_level[child.gate_of_port(p)]);
      }
    }
    cache.child_level[g] = m + 1;
  }
  const Cost c = measure_masked(child, cache.child_live, cache.child_level,
                                n_live, cache.schedule, cache);
  cost_delta_updates().inc();
  if (commit) {
    cache.live.swap(cache.child_live);
    cache.level.swap(cache.child_level);
    cache.base_cost = c;
  }
  return c;
}

} // namespace

std::size_t CostCache::scratch_bytes() const {
  return (live.capacity() + child_live.capacity()) * sizeof(std::uint8_t) +
         (level.capacity() + child_level.capacity() + stack.capacity() +
          fanout.capacity()) *
             sizeof(std::uint32_t) +
         scheduler.scratch_bytes();
}

std::string Cost::to_string() const {
  return "n_r=" + std::to_string(n_r) + " n_b=" + std::to_string(n_b) +
         " JJs=" + std::to_string(jjs) + " n_d=" + std::to_string(n_d) +
         " n_g=" + std::to_string(n_g);
}

Cost build_cost_cache(const Netlist& net, BufferSchedule schedule,
                      CostCache& cache) {
  cache.schedule = schedule;
  const std::uint32_t n_live = mark_live(net, cache.live, cache.stack);
  net.gate_levels(cache.level);
  const Cost c =
      measure_masked(net, cache.live, cache.level, n_live, schedule, cache);
  cache.num_pis = net.num_pis();
  cache.num_gates = net.num_gates();
  cache.num_pos = net.num_pos();
  cache.base_cost = c;
  cache.valid = true;
  cost_full_recomputes().inc();
  cost_scratch_bytes().set(static_cast<double>(cache.scratch_bytes()));
  return c;
}

namespace {

/// Diff scan: lowest gate whose inputs changed (into `first_topo`) and
/// whether any such gate is live in the cached base. Stops as soon as
/// both answers are settled.
bool scan_topo_diff(const Netlist& base, const Netlist& child,
                    const CostCache& cache, std::uint32_t& first_topo) {
  const std::uint32_t n = base.num_gates();
  first_topo = n;
  for (std::uint32_t g = 0; g < n; ++g) {
    if (base.gate(g).in != child.gate(g).in) {
      if (first_topo == n) {
        first_topo = g;
      }
      if (cache.live[g]) {
        return true;
      }
    }
  }
  return false;
}

} // namespace

Cost cost_of_delta(const Netlist& base, const Netlist& child,
                   CostCache& cache) {
  check_delta_shapes(base, child, cache);
  std::uint32_t first_topo = 0;
  const bool live_changed = scan_topo_diff(base, child, cache, first_topo);
  return delta_impl(base, child, first_topo, live_changed, cache,
                    /*commit=*/false);
}

Cost cost_of_delta(const Netlist& base, const Netlist& child,
                   std::span<const std::uint32_t> touched_gates,
                   CostCache& cache) {
  check_delta_shapes(base, child, cache);
  const std::uint32_t n = base.num_gates();
  std::uint32_t first_topo = n;
  bool live_changed = false;
  for (const std::uint32_t g : touched_gates) {
    if (g < n && base.gate(g).in != child.gate(g).in) {
      first_topo = std::min(first_topo, g);
      live_changed = live_changed || cache.live[g] != 0;
    }
  }
  return delta_impl(base, child, first_topo, live_changed, cache,
                    /*commit=*/false);
}

Cost update_cost_cache(const Netlist& from, const Netlist& to,
                       CostCache& cache) {
  check_delta_shapes(from, to, cache);
  std::uint32_t first_topo = 0;
  const bool live_changed = scan_topo_diff(from, to, cache, first_topo);
  return delta_impl(from, to, first_topo, live_changed, cache,
                    /*commit=*/true);
}

Cost cost_of(const Netlist& net, BufferSchedule schedule) {
  // One warm cache per thread: callers outside the evolutionary loop
  // (flow reporting, the CLI, anneal_energy) also skip the historical
  // remove_dead_gates() copy and steady-state allocations.
  static thread_local CostCache tl_cache;
  return build_cost_cache(net, schedule, tl_cache);
}

std::uint32_t garbage_lower_bound(unsigned num_pis, unsigned num_pos) {
  return num_pis > num_pos ? num_pis - num_pos : 0;
}

} // namespace rcgp::rqfp
