#include "rqfp/cost.hpp"

namespace rcgp::rqfp {

std::string Cost::to_string() const {
  return "n_r=" + std::to_string(n_r) + " n_b=" + std::to_string(n_b) +
         " JJs=" + std::to_string(jjs) + " n_d=" + std::to_string(n_d) +
         " n_g=" + std::to_string(n_g);
}

Cost cost_of(const Netlist& net, BufferSchedule schedule) {
  const Netlist live = net.remove_dead_gates();
  Cost c;
  c.n_r = live.num_gates();
  c.n_g = live.count_garbage_outputs();
  const BufferPlan plan = plan_buffers(live, schedule);
  c.n_b = plan.total;
  c.n_d = plan.depth;
  c.jjs = kJjsPerGate * c.n_r + kJjsPerBuffer * c.n_b;
  return c;
}

std::uint32_t garbage_lower_bound(unsigned num_pis, unsigned num_pos) {
  return num_pis > num_pos ? num_pis - num_pos : 0;
}

} // namespace rcgp::rqfp
