// AVX2 kernel tier. This TU (and only this TU) is compiled with -mavx2;
// the dispatcher never hands out this table unless CPUID reports AVX2.

#include "rqfp/simd_impl.hpp"
#include "rqfp/simd_popcount_x86.hpp"

#include <immintrin.h>

namespace rcgp::rqfp::simd {

namespace {

inline __m256i maj(__m256i a, __m256i b, __m256i c) {
  return _mm256_or_si256(_mm256_and_si256(a, _mm256_or_si256(b, c)),
                         _mm256_and_si256(b, c));
}

void avx2_gate3(std::uint16_t config, const std::uint64_t* a,
                const std::uint64_t* b, const std::uint64_t* c,
                std::uint64_t* o0, std::uint64_t* o1, std::uint64_t* o2,
                std::size_t n) {
  std::uint64_t mask[9];
  __m256i vmask[9];
  for (unsigned s = 0; s < 9; ++s) {
    mask[s] = (config >> s) & 1 ? ~std::uint64_t{0} : 0;
    vmask[s] = _mm256_set1_epi64x(static_cast<long long>(mask[s]));
  }
  std::uint64_t* const out[3] = {o0, o1, o2};
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + w));
    for (unsigned k = 0; k < 3; ++k) {
      const __m256i x = _mm256_xor_si256(va, vmask[3 * k + 0]);
      const __m256i y = _mm256_xor_si256(vb, vmask[3 * k + 1]);
      const __m256i z = _mm256_xor_si256(vc, vmask[3 * k + 2]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out[k] + w),
                          maj(x, y, z));
    }
  }
  for (; w < n; ++w) {
    for (unsigned k = 0; k < 3; ++k) {
      const std::uint64_t x = a[w] ^ mask[3 * k + 0];
      const std::uint64_t y = b[w] ^ mask[3 * k + 1];
      const std::uint64_t z = c[w] ^ mask[3 * k + 2];
      out[k][w] = (x & y) | (x & z) | (y & z);
    }
  }
}

void avx2_maj3(const std::uint64_t* a, std::uint64_t ma,
               const std::uint64_t* b, std::uint64_t mb,
               const std::uint64_t* c, std::uint64_t mc, std::uint64_t* out,
               std::size_t n) {
  const __m256i va_mask = _mm256_set1_epi64x(static_cast<long long>(ma));
  const __m256i vb_mask = _mm256_set1_epi64x(static_cast<long long>(mb));
  const __m256i vc_mask = _mm256_set1_epi64x(static_cast<long long>(mc));
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)), va_mask);
    const __m256i y = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)), vb_mask);
    const __m256i z = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + w)), vc_mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), maj(x, y, z));
  }
  for (; w < n; ++w) {
    const std::uint64_t x = a[w] ^ ma;
    const std::uint64_t y = b[w] ^ mb;
    const std::uint64_t z = c[w] ^ mc;
    out[w] = (x & y) | (x & z) | (y & z);
  }
}

void avx2_and2(const std::uint64_t* a, std::uint64_t ma,
               const std::uint64_t* b, std::uint64_t mb, std::uint64_t* out,
               std::size_t n) {
  const __m256i va_mask = _mm256_set1_epi64x(static_cast<long long>(ma));
  const __m256i vb_mask = _mm256_set1_epi64x(static_cast<long long>(mb));
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)), va_mask);
    const __m256i y = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)), vb_mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                        _mm256_and_si256(x, y));
  }
  for (; w < n; ++w) {
    out[w] = (a[w] ^ ma) & (b[w] ^ mb);
  }
}

std::uint64_t avx2_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  return detail::xor_popcount_avx2(a, b, n);
}

} // namespace

const Kernels& avx2_kernel_table() {
  static constexpr Kernels k{avx2_gate3, avx2_maj3, avx2_and2,
                             avx2_xor_popcount};
  return k;
}

} // namespace rcgp::rqfp::simd
