#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "rqfp/gate.hpp"
#include "tt/truth_table.hpp"

namespace rcgp::rqfp {

/// Census of the 512 inverter configurations of an RQFP gate: which
/// single-output functions a row can realize, which triples exist, and a
/// reverse lookup from desired row functions to a configuration. Powers
/// tests, documentation, and the shared-fanin packing analysis.
class ConfigCatalog {
public:
  /// Builds the full catalog (512 evaluations over 3-variable tables).
  ConfigCatalog();

  /// The 3-variable function computed by `row_bits` (a phased majority).
  static tt::TruthTable row_function(unsigned row_bits);

  /// All 8 distinct single-row functions (one per inverter pattern).
  const std::vector<tt::TruthTable>& row_functions() const {
    return row_functions_;
  }

  /// Configuration whose rows realize the three given functions (each must
  /// be a phased majority of the inputs); nullopt when any is not.
  static std::optional<InvConfig> config_for(const tt::TruthTable& y0,
                                             const tt::TruthTable& y1,
                                             const tt::TruthTable& y2);

  /// Row bits realizing `f`, if f is a phased majority. Exposed for the
  /// packing logic.
  static std::optional<unsigned> row_for(const tt::TruthTable& f);

  /// Number of configurations whose input->output map is a bijection.
  unsigned num_bijective() const { return num_bijective_; }

  /// Number of distinct (y0,y1,y2) function triples across all configs.
  std::size_t num_distinct_triples() const { return num_triples_; }

private:
  std::vector<tt::TruthTable> row_functions_;
  unsigned num_bijective_ = 0;
  std::size_t num_triples_ = 0;
};

} // namespace rcgp::rqfp
