#include "rqfp/map_from_mig.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace rcgp::rqfp {

namespace {

/// Where a MIG signal lives in the RQFP port space, plus whether the
/// consumer must invert it (absorbed into the consumer's config row).
struct Driver {
  Port port = kConstPort;
  bool invert = false;
};

} // namespace

Netlist map_from_mig(const mig::Mig& input, MapStats* stats,
                     const MapOptions& options) {
  const mig::Mig net = input.cleanup();
  MapStats local;

  Netlist out(net.num_pis());
  {
    std::vector<std::string> names;
    names.reserve(net.num_pis());
    for (std::uint32_t i = 0; i < net.num_pis(); ++i) {
      names.push_back(net.pi_name(i));
    }
    out.set_pi_names(std::move(names));
  }

  // MIG node -> functional RQFP port (output 2 of its gate).
  std::vector<Port> node_port(net.num_nodes(), kConstPort);

  auto driver_of = [&](mig::Signal s) -> Driver {
    if (net.is_const(s.node())) {
      // MIG constant node is FALSE; RQFP constant port is 1: feeding the
      // value of the signal requires an inverter exactly when the signal
      // is the un-complemented constant (value 0).
      return Driver{kConstPort, !s.complemented()};
    }
    if (net.is_pi(s.node())) {
      return Driver{static_cast<Port>(1 + net.pi_index(s.node())),
                    s.complemented()};
    }
    return Driver{node_port[s.node()], s.complemented()};
  };

  // Packing state: sorted fanin-port triple -> (gate, rows already used).
  struct PackSlot {
    std::uint32_t gate;
    unsigned rows_used;
  };
  std::map<std::array<Port, 3>, PackSlot> packs;

  for (std::uint32_t n = 0; n < net.num_nodes(); ++n) {
    if (!net.is_maj(n)) {
      continue;
    }
    Driver d[3];
    for (unsigned i = 0; i < 3; ++i) {
      d[i] = driver_of(net.fanin(n, i));
    }

    if (options.pack_shared_fanins) {
      std::array<Port, 3> key{d[0].port, d[1].port, d[2].port};
      std::sort(key.begin(), key.end());
      const auto it = packs.find(key);
      // The creating node occupies row 2; rows 0 and 1 are packable.
      if (it != packs.end() && it->second.rows_used < 2) {
        // Reuse the existing gate: align our inverter bits with its input
        // order (duplicate ports — only the constant can repeat — are
        // order-insensitive because their inversion bits are per-slot).
        auto& gate = out.gate(it->second.gate);
        unsigned row_bits = 0;
        std::array<bool, 3> used{};
        for (unsigned i = 0; i < 3; ++i) {
          for (unsigned s = 0; s < 3; ++s) {
            if (!used[s] && gate.in[s] == d[i].port) {
              used[s] = true;
              if (d[i].invert) {
                row_bits |= 1u << s;
              }
              break;
            }
          }
        }
        const unsigned row = it->second.rows_used++;
        unsigned rows[3] = {gate.config.row(0), gate.config.row(1),
                            gate.config.row(2)};
        rows[row] = row_bits;
        gate.config = InvConfig::from_rows(rows[0], rows[1], rows[2]);
        node_port[n] = out.port_of(it->second.gate, row);
        ++local.packed_nodes;
        continue;
      }
    }

    const unsigned inv_bits = (d[0].invert ? 1u : 0u) |
                              (d[1].invert ? 2u : 0u) |
                              (d[2].invert ? 4u : 0u);
    // Output 2 carries the function; rows 0 and 1 add the normal-gate
    // inverter pattern on top so the gate stays input-inverter-extended
    // reversible in structure.
    const InvConfig cfg =
        InvConfig::from_rows(inv_bits ^ 1u, inv_bits ^ 2u, inv_bits);
    const std::uint32_t g =
        out.add_gate({d[0].port, d[1].port, d[2].port}, cfg);
    node_port[n] = out.port_of(g, 2);
    ++local.logic_gates;
    if (options.pack_shared_fanins) {
      std::array<Port, 3> key{d[0].port, d[1].port, d[2].port};
      std::sort(key.begin(), key.end());
      // Row 2 is taken by this node; packed nodes fill rows 0 and 1.
      packs[key] = PackSlot{g, 0};
    }
  }

  // Primary outputs: absorb complement into the producer row when sole
  // consumer; otherwise synthesize an inverter gate.
  std::vector<std::uint32_t> extra_consumers(out.first_free_port() + 0, 0);
  {
    // Count gate-input consumption so PO-absorption checks are exact.
    for (std::uint32_t g = 0; g < out.num_gates(); ++g) {
      for (const Port p : out.gate(g).in) {
        if (p < extra_consumers.size()) {
          ++extra_consumers[p];
        }
      }
    }
  }
  // Count how many POs share each driver as well.
  std::vector<std::uint32_t> po_share(out.first_free_port(), 0);
  std::vector<Driver> po_drivers(net.num_pos());
  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    po_drivers[i] = driver_of(net.po_at(i));
    if (po_drivers[i].port < po_share.size()) {
      ++po_share[po_drivers[i].port];
    }
  }

  for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
    Driver d = po_drivers[i];
    if (!d.invert) {
      out.add_po(d.port, net.po_name(i));
      continue;
    }
    const bool sole_consumer = out.is_gate_port(d.port) &&
                               extra_consumers[d.port] == 0 &&
                               po_share[d.port] == 1;
    if (sole_consumer) {
      // Flip all three inverter bits of the producing row: M(!x,!y,!z) =
      // !M(x,y,z).
      const std::uint32_t g = out.gate_of_port(d.port);
      const unsigned slot = out.slot_of_port(d.port);
      auto& gate = out.gate(g);
      unsigned rows[3] = {gate.config.row(0), gate.config.row(1),
                          gate.config.row(2)};
      rows[slot] ^= 7u;
      gate.config = InvConfig::from_rows(rows[0], rows[1], rows[2]);
      out.add_po(d.port, net.po_name(i));
      continue;
    }
    // Dedicated inverter: splitter gate with inverting middle input.
    const std::uint32_t g = out.add_gate({kConstPort, d.port, kConstPort},
                                         InvConfig::from_rows(6, 6, 6));
    ++local.inverter_gates;
    out.add_po(out.port_of(g, 0), net.po_name(i));
  }

  if (stats) {
    *stats = local;
  }
  return out;
}

} // namespace rcgp::rqfp
