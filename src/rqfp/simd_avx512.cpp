// AVX-512 kernel tier: 512-bit lanes, with the three-input majority folded
// into a single VPTERNLOG (imm 0xE8). This TU is compiled with
// -mavx512f -mavx2; the dispatcher hands it out only when CPUID reports
// avx512f. Popcount stays on the 256-bit nibble LUT — VPOPCNTDQ is not in
// the avx512f baseline.

#include "rqfp/simd_impl.hpp"
#include "rqfp/simd_popcount_x86.hpp"

#include <immintrin.h>

namespace rcgp::rqfp::simd {

namespace {

// imm 0xE8: f(a,b,c) = (a & b) | (a & c) | (b & c).
constexpr int kMajImm = 0xE8;

void avx512_gate3(std::uint16_t config, const std::uint64_t* a,
                  const std::uint64_t* b, const std::uint64_t* c,
                  std::uint64_t* o0, std::uint64_t* o1, std::uint64_t* o2,
                  std::size_t n) {
  std::uint64_t mask[9];
  __m512i vmask[9];
  for (unsigned s = 0; s < 9; ++s) {
    mask[s] = (config >> s) & 1 ? ~std::uint64_t{0} : 0;
    vmask[s] = _mm512_set1_epi64(static_cast<long long>(mask[s]));
  }
  std::uint64_t* const out[3] = {o0, o1, o2};
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    const __m512i vc = _mm512_loadu_si512(c + w);
    for (unsigned k = 0; k < 3; ++k) {
      const __m512i x = _mm512_xor_si512(va, vmask[3 * k + 0]);
      const __m512i y = _mm512_xor_si512(vb, vmask[3 * k + 1]);
      const __m512i z = _mm512_xor_si512(vc, vmask[3 * k + 2]);
      _mm512_storeu_si512(out[k] + w,
                          _mm512_ternarylogic_epi64(x, y, z, kMajImm));
    }
  }
  for (; w < n; ++w) {
    for (unsigned k = 0; k < 3; ++k) {
      const std::uint64_t x = a[w] ^ mask[3 * k + 0];
      const std::uint64_t y = b[w] ^ mask[3 * k + 1];
      const std::uint64_t z = c[w] ^ mask[3 * k + 2];
      out[k][w] = (x & y) | (x & z) | (y & z);
    }
  }
}

void avx512_maj3(const std::uint64_t* a, std::uint64_t ma,
                 const std::uint64_t* b, std::uint64_t mb,
                 const std::uint64_t* c, std::uint64_t mc, std::uint64_t* out,
                 std::size_t n) {
  const __m512i va_mask = _mm512_set1_epi64(static_cast<long long>(ma));
  const __m512i vb_mask = _mm512_set1_epi64(static_cast<long long>(mb));
  const __m512i vc_mask = _mm512_set1_epi64(static_cast<long long>(mc));
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w), va_mask);
    const __m512i y = _mm512_xor_si512(_mm512_loadu_si512(b + w), vb_mask);
    const __m512i z = _mm512_xor_si512(_mm512_loadu_si512(c + w), vc_mask);
    _mm512_storeu_si512(out + w, _mm512_ternarylogic_epi64(x, y, z, kMajImm));
  }
  for (; w < n; ++w) {
    const std::uint64_t x = a[w] ^ ma;
    const std::uint64_t y = b[w] ^ mb;
    const std::uint64_t z = c[w] ^ mc;
    out[w] = (x & y) | (x & z) | (y & z);
  }
}

void avx512_and2(const std::uint64_t* a, std::uint64_t ma,
                 const std::uint64_t* b, std::uint64_t mb, std::uint64_t* out,
                 std::size_t n) {
  const __m512i va_mask = _mm512_set1_epi64(static_cast<long long>(ma));
  const __m512i vb_mask = _mm512_set1_epi64(static_cast<long long>(mb));
  std::size_t w = 0;
  for (; w + 8 <= n; w += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w), va_mask);
    const __m512i y = _mm512_xor_si512(_mm512_loadu_si512(b + w), vb_mask);
    _mm512_storeu_si512(out + w, _mm512_and_si512(x, y));
  }
  for (; w < n; ++w) {
    out[w] = (a[w] ^ ma) & (b[w] ^ mb);
  }
}

std::uint64_t avx512_xor_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  return detail::xor_popcount_avx2(a, b, n);
}

} // namespace

const Kernels& avx512_kernel_table() {
  static constexpr Kernels k{avx512_gate3, avx512_maj3, avx512_and2,
                             avx512_xor_popcount};
  return k;
}

} // namespace rcgp::rqfp::simd
