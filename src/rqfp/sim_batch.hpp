#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <string>

#include "rqfp/simd.hpp"

namespace rcgp::rqfp {

/// Flat word-major simulation-pattern buffer: `rows` bit-vectors of
/// `words` 64-bit words each in a single contiguous allocation.
///
/// Storage is laid out for the vector kernels (rqfp/simd.hpp): the buffer
/// is simd::kAlignment-byte aligned and each row's stride is padded up to
/// a multiple of simd::kMaxBlockWords, so every row() pointer is itself
/// aligned to a full AVX-512 lane. Row r, word w lives at index
/// r * stride() + w; the padding words [words(), stride()) of every row
/// are kept zero as a class invariant (resize() zero-fills and the
/// accessors only touch the logical width), so whole-stride word compares
/// and checksums are safe.
///
/// This replaces the `std::vector<std::vector<std::uint64_t>>` pattern
/// API of simulate_patterns / sim_check_random: one allocation instead of
/// rows+1, and resize() reuses capacity, so a batch can be carried across
/// many simulations without touching the allocator. The word count is an
/// explicit property of the batch, so a 0-row batch (a netlist with no
/// PIs) still has a well-defined width.
class SimBatch {
public:
  SimBatch() = default;
  SimBatch(std::size_t rows, std::size_t words) { resize(rows, words); }

  std::size_t rows() const { return rows_; }
  std::size_t words() const { return words_; }
  /// Allocated words per row: words() rounded up to the vector block.
  std::size_t stride() const { return stride_; }

  /// Reshapes to rows x words and zero-fills (padding included), reusing
  /// capacity. Throws std::length_error when rows * stride overflows.
  void resize(std::size_t rows, std::size_t words) {
    const std::size_t stride = padded_words(words);
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max() /
                                 sizeof(std::uint64_t);
    if (stride != 0 && rows > kMax / stride) {
      throw std::length_error("SimBatch::resize: " + std::to_string(rows) +
                              " rows x " + std::to_string(words) +
                              " words overflows the address space");
    }
    const std::size_t need = rows * stride;
    if (need > capacity_) {
      data_.reset(new (std::align_val_t{simd::kAlignment})
                      std::uint64_t[need]);
      capacity_ = need;
    }
    rows_ = rows;
    words_ = words;
    stride_ = stride;
    std::fill_n(data_.get(), need, std::uint64_t{0});
  }

  std::uint64_t* row(std::size_t r) { return data_.get() + r * stride_; }
  const std::uint64_t* row(std::size_t r) const {
    return data_.get() + r * stride_;
  }
  std::span<std::uint64_t> row_span(std::size_t r) {
    return {row(r), words_};
  }
  std::span<const std::uint64_t> row_span(std::size_t r) const {
    return {row(r), words_};
  }

  std::uint64_t& at(std::size_t r, std::size_t w) {
    return data_[r * stride_ + w];
  }
  std::uint64_t at(std::size_t r, std::size_t w) const {
    return data_[r * stride_ + w];
  }

  void fill_row(std::size_t r, std::uint64_t value) {
    std::fill_n(row(r), words_, value);
  }

  /// Copies `words()` words from an externally produced buffer into row r,
  /// after validating it (see check_external).
  void assign_row(std::size_t r, const std::uint64_t* src) {
    check_external(src, words_, "SimBatch::assign_row");
    std::copy_n(src, words_, row(r));
  }

  /// Validates an externally supplied word buffer before the kernels run
  /// over it: non-null whenever words > 0 and naturally aligned for
  /// std::uint64_t (the vector kernels use unaligned lane loads, so no
  /// stricter alignment is required of callers). Throws
  /// std::invalid_argument with a contextual message otherwise.
  static void check_external(const std::uint64_t* data, std::size_t words,
                             const char* who) {
    if (words == 0) {
      return;
    }
    if (data == nullptr) {
      throw std::invalid_argument(std::string(who) +
                                  ": external buffer is null for " +
                                  std::to_string(words) + " words");
    }
    const auto addr = reinterpret_cast<std::uintptr_t>(data);
    if (addr % alignof(std::uint64_t) != 0) {
      throw std::invalid_argument(
          std::string(who) + ": external buffer " + std::to_string(addr) +
          " is not aligned to " + std::to_string(alignof(std::uint64_t)) +
          " bytes");
    }
  }

  /// Round a logical word count up to the vector-block stride.
  static std::size_t padded_words(std::size_t words) {
    return (words + simd::kMaxBlockWords - 1) / simd::kMaxBlockWords *
           simd::kMaxBlockWords;
  }

  /// Logical-content equality (padding never participates).
  bool operator==(const SimBatch& o) const {
    if (rows_ != o.rows_ || words_ != o.words_) {
      return false;
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (!std::equal(row(r), row(r) + words_, o.row(r))) {
        return false;
      }
    }
    return true;
  }

private:
  struct AlignedDelete {
    void operator()(std::uint64_t* p) const {
      ::operator delete[](p, std::align_val_t{simd::kAlignment});
    }
  };

  std::size_t rows_ = 0;
  std::size_t words_ = 0;
  std::size_t stride_ = 0;
  std::size_t capacity_ = 0;
  std::unique_ptr<std::uint64_t[], AlignedDelete> data_;
};

} // namespace rcgp::rqfp
