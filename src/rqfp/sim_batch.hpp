#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rcgp::rqfp {

/// Flat word-major simulation-pattern buffer: `rows` bit-vectors of
/// `words` 64-bit words each in a single contiguous allocation (row r,
/// word w lives at index r * words + w).
///
/// This replaces the `std::vector<std::vector<std::uint64_t>>` pattern
/// API of simulate_patterns / sim_check_random: one allocation instead of
/// rows+1, and resize() reuses capacity, so a batch can be carried across
/// many simulations without touching the allocator. The word count is an
/// explicit property of the batch, so a 0-row batch (a netlist with no
/// PIs) still has a well-defined width.
class SimBatch {
public:
  SimBatch() = default;
  SimBatch(std::size_t rows, std::size_t words) { resize(rows, words); }

  std::size_t rows() const { return rows_; }
  std::size_t words() const { return words_; }

  /// Reshapes to rows x words and zero-fills, reusing capacity.
  void resize(std::size_t rows, std::size_t words) {
    rows_ = rows;
    words_ = words;
    data_.assign(rows * words, 0);
  }

  std::uint64_t* row(std::size_t r) { return data_.data() + r * words_; }
  const std::uint64_t* row(std::size_t r) const {
    return data_.data() + r * words_;
  }
  std::span<std::uint64_t> row_span(std::size_t r) {
    return {row(r), words_};
  }
  std::span<const std::uint64_t> row_span(std::size_t r) const {
    return {row(r), words_};
  }

  std::uint64_t& at(std::size_t r, std::size_t w) {
    return data_[r * words_ + w];
  }
  std::uint64_t at(std::size_t r, std::size_t w) const {
    return data_[r * words_ + w];
  }

  void fill_row(std::size_t r, std::uint64_t value) {
    for (std::size_t w = 0; w < words_; ++w) {
      at(r, w) = value;
    }
  }

  bool operator==(const SimBatch&) const = default;

private:
  std::size_t rows_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> data_;
};

} // namespace rcgp::rqfp
