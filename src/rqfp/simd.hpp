#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace rcgp::rqfp::simd {

/// Runtime-dispatched word-block kernels for the simulation hot path
/// (docs/SIMD.md).
///
/// Every kernel is a pure bitwise function over arrays of 64-bit words, so
/// all tiers are bit-identical by construction: a vector lane computes the
/// same AND/OR/XOR the scalar loop does, just 4 or 8 words at a time. The
/// tier is resolved once on first use from CPUID, overridable with
/// RCGP_SIMD=scalar|avx2|avx512 (unknown names and tiers the host cannot
/// run throw, with the available set in the message). Tests and the
/// simd-differential fuzz target switch tiers programmatically with
/// force_tier; since all tiers agree bit-for-bit, switching mid-run never
/// changes a result.
///
/// Alignment: kernels use unaligned vector loads, so any buffer works
/// (TruthTable words live in plain std::vector storage). SimBatch pads and
/// aligns its rows (kAlignment, stride a multiple of kMaxBlockWords) so
/// the widest pattern sweeps run on full aligned blocks.
enum class Tier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Bytes of alignment SimBatch guarantees per row — one AVX-512 vector.
inline constexpr std::size_t kAlignment = 64;
/// Words per widest vector block; SimBatch pads row strides to this.
inline constexpr std::size_t kMaxBlockWords = kAlignment / sizeof(std::uint64_t);

/// One tier's kernel table. Output arrays must not alias the inputs
/// (simulation writes every gate's outputs to fresh ports, so the hot
/// paths satisfy this for free).
struct Kernels {
  /// RQFP gate: o_k[w] = MAJ(a[w]^inv(k,0), b[w]^inv(k,1), c[w]^inv(k,2))
  /// for the 9 inverter bits of `config` (rqfp::InvConfig::bits()). One
  /// pass computes all three outputs while the inputs are in registers.
  void (*gate3)(std::uint16_t config, const std::uint64_t* a,
                const std::uint64_t* b, const std::uint64_t* c,
                std::uint64_t* o0, std::uint64_t* o1, std::uint64_t* o2,
                std::size_t n);
  /// out[w] = MAJ(a[w]^ma, b[w]^mb, c[w]^mc); masks are 0 or ~0.
  void (*maj3)(const std::uint64_t* a, std::uint64_t ma,
               const std::uint64_t* b, std::uint64_t mb,
               const std::uint64_t* c, std::uint64_t mc, std::uint64_t* out,
               std::size_t n);
  /// out[w] = (a[w]^ma) & (b[w]^mb); the AIG node function.
  void (*and2)(const std::uint64_t* a, std::uint64_t ma,
               const std::uint64_t* b, std::uint64_t mb, std::uint64_t* out,
               std::size_t n);
  /// popcount(a ^ b) over n words — the Hamming-distance fitness kernel.
  std::uint64_t (*xor_popcount)(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n);
};

/// "scalar" / "avx2" / "avx512".
std::string_view to_string(Tier tier);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
Tier parse_tier(std::string_view name);
/// Vector width of a tier in bits (64 / 256 / 512).
unsigned width_bits(Tier tier);

/// Tiers this binary can run on this host, ascending; always starts with
/// kScalar. A tier is available when it was compiled in (CMake probes the
/// -mavx2/-mavx512f flags) AND the CPU reports the feature.
const std::vector<Tier>& available_tiers();
/// The widest available tier.
Tier best_tier();

/// The tier the next kernels() call returns: RCGP_SIMD if set (resolved
/// once, throws on unknown or unavailable values), else best_tier(), else
/// whatever force_tier installed last.
Tier active_tier();
/// Kernel table of the active tier.
const Kernels& kernels();
/// Kernel table of a specific tier; throws std::invalid_argument when the
/// tier is not available on this host.
const Kernels& kernels(Tier tier);
/// Installs `tier` as the active tier (differential tests; production
/// code never needs it). Throws like kernels(Tier). Thread-safe, and
/// harmless to race: every tier is bit-identical.
void force_tier(Tier tier);

} // namespace rcgp::rqfp::simd
