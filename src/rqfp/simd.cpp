#include "rqfp/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "rqfp/simd_impl.hpp"

namespace rcgp::rqfp::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar kernels — the reference semantics every vector tier must match
// bit-for-bit (asserted by bench_sim, test_rqfp, and the
// simd-differential fuzz target).

void scalar_gate3(std::uint16_t config, const std::uint64_t* a,
                  const std::uint64_t* b, const std::uint64_t* c,
                  std::uint64_t* o0, std::uint64_t* o1, std::uint64_t* o2,
                  std::size_t n) {
  std::uint64_t mask[9];
  for (unsigned s = 0; s < 9; ++s) {
    mask[s] = (config >> s) & 1 ? ~std::uint64_t{0} : 0;
  }
  std::uint64_t* const out[3] = {o0, o1, o2};
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t in[3] = {a[w], b[w], c[w]};
    for (unsigned k = 0; k < 3; ++k) {
      const std::uint64_t x = in[0] ^ mask[3 * k + 0];
      const std::uint64_t y = in[1] ^ mask[3 * k + 1];
      const std::uint64_t z = in[2] ^ mask[3 * k + 2];
      out[k][w] = (x & y) | (x & z) | (y & z);
    }
  }
}

void scalar_maj3(const std::uint64_t* a, std::uint64_t ma,
                 const std::uint64_t* b, std::uint64_t mb,
                 const std::uint64_t* c, std::uint64_t mc, std::uint64_t* out,
                 std::size_t n) {
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t x = a[w] ^ ma;
    const std::uint64_t y = b[w] ^ mb;
    const std::uint64_t z = c[w] ^ mc;
    out[w] = (x & y) | (x & z) | (y & z);
  }
}

void scalar_and2(const std::uint64_t* a, std::uint64_t ma,
                 const std::uint64_t* b, std::uint64_t mb, std::uint64_t* out,
                 std::size_t n) {
  for (std::size_t w = 0; w < n; ++w) {
    out[w] = (a[w] ^ ma) & (b[w] ^ mb);
  }
}

std::uint64_t scalar_xor_popcount(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  std::uint64_t count = 0;
  for (std::size_t w = 0; w < n; ++w) {
    count += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return count;
}

// ---------------------------------------------------------------------
// Detection and dispatch

bool cpu_has(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(RCGP_SIMD_HAVE_AVX2) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(RCGP_SIMD_HAVE_AVX512) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

std::string available_list() {
  std::string s;
  for (const Tier t : available_tiers()) {
    if (!s.empty()) {
      s += ", ";
    }
    s += to_string(t);
  }
  return s;
}

const Kernels* table_of(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &scalar_kernel_table();
    case Tier::kAvx2:
#ifdef RCGP_SIMD_HAVE_AVX2
      return &avx2_kernel_table();
#else
      return nullptr;
#endif
    case Tier::kAvx512:
#ifdef RCGP_SIMD_HAVE_AVX512
      return &avx512_kernel_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

void publish_tier(Tier tier) {
  obs::registry().gauge("sim.simd_width").set(width_bits(tier));
  obs::registry().gauge("sim.simd_tier").set(static_cast<double>(tier));
}

/// The active dispatch entry. Resolved lazily on first use; force_tier
/// swaps it atomically (all tiers agree bit-for-bit, so a racing reader
/// merely runs a few calls on the previous tier).
std::atomic<const Kernels*> g_active_kernels{nullptr};
std::atomic<Tier> g_active_tier{Tier::kScalar};
std::once_flag g_resolve_once;

void resolve_active() {
  std::call_once(g_resolve_once, [] {
    Tier tier = best_tier();
    if (const char* env = std::getenv("RCGP_SIMD"); env && *env != '\0') {
      const Tier forced = parse_tier(env); // throws on unknown names
      if (!cpu_has(forced)) {
        throw std::runtime_error(
            "RCGP_SIMD=" + std::string(env) +
            ": tier not available on this host (available: " +
            available_list() + ")");
      }
      tier = forced;
    }
    g_active_tier.store(tier, std::memory_order_relaxed);
    g_active_kernels.store(table_of(tier), std::memory_order_release);
    publish_tier(tier);
  });
}

} // namespace

const Kernels& scalar_kernel_table() {
  static constexpr Kernels k{scalar_gate3, scalar_maj3, scalar_and2,
                             scalar_xor_popcount};
  return k;
}

std::string_view to_string(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "unknown";
}

Tier parse_tier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  throw std::invalid_argument("simd: unknown tier '" + std::string(name) +
                              "' (expected scalar, avx2, or avx512)");
}

unsigned width_bits(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return 64;
    case Tier::kAvx2: return 256;
    case Tier::kAvx512: return 512;
  }
  return 64;
}

const std::vector<Tier>& available_tiers() {
  static const std::vector<Tier> tiers = [] {
    std::vector<Tier> t{Tier::kScalar};
    if (cpu_has(Tier::kAvx2)) {
      t.push_back(Tier::kAvx2);
    }
    if (cpu_has(Tier::kAvx512)) {
      t.push_back(Tier::kAvx512);
    }
    return t;
  }();
  return tiers;
}

Tier best_tier() {
  return available_tiers().back();
}

Tier active_tier() {
  resolve_active();
  return g_active_tier.load(std::memory_order_relaxed);
}

const Kernels& kernels() {
  const Kernels* k = g_active_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    resolve_active();
    k = g_active_kernels.load(std::memory_order_acquire);
  }
  return *k;
}

const Kernels& kernels(Tier tier) {
  if (!cpu_has(tier)) {
    throw std::invalid_argument(
        "simd: tier '" + std::string(to_string(tier)) +
        "' not available on this host (available: " + available_list() + ")");
  }
  return *table_of(tier);
}

void force_tier(Tier tier) {
  const Kernels& table = kernels(tier); // validates availability
  resolve_active();                     // keep first-use semantics stable
  g_active_tier.store(tier, std::memory_order_relaxed);
  g_active_kernels.store(&table, std::memory_order_release);
  publish_tier(tier);
}

} // namespace rcgp::rqfp::simd
