// Ablation A: mutation-rate sweep. The paper fixes mu = 1; this bench
// shows how the final gate/garbage counts depend on mu at a fixed budget,
// justifying that choice for the netlist-sized chromosomes RCGP evolves.
//
// Env overrides: RCGP_AB_GENERATIONS (default 20000), RCGP_AB_SEEDS (3).

#include <cstdio>

#include "table_common.hpp"

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t generations = env_u64("RCGP_AB_GENERATIONS", 20000);
  const std::uint64_t num_seeds = env_u64("RCGP_AB_SEEDS", 3);
  const double mus[] = {0.05, 0.1, 0.3, 0.6, 1.0};

  std::printf("Ablation: mutation rate sweep "
              "(%llu generations, %llu seeds averaged)\n\n",
              static_cast<unsigned long long>(generations),
              static_cast<unsigned long long>(num_seeds));
  std::printf("%-12s %6s | %8s %8s %8s\n", "testcase", "mu", "n_r", "n_g",
              "T(s)");

  for (const char* name : {"decoder_2_4", "graycode4", "c17"}) {
    const auto b = benchmarks::get(name);
    for (const double mu : mus) {
      double sum_r = 0;
      double sum_g = 0;
      double sum_t = 0;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        core::FlowOptions opt;
        opt.evolve.generations = generations;
        opt.evolve.mutation.mu = mu;
        opt.evolve.seed = 1000 + s;
        const auto r = core::synthesize(b.spec, opt);
        sum_r += r.optimized_cost.n_r;
        sum_g += r.optimized_cost.n_g;
        sum_t += r.evolution.seconds;
      }
      std::printf("%-12s %6.2f | %8.2f %8.2f %8.2f\n", name, mu,
                  sum_r / num_seeds, sum_g / num_seeds, sum_t / num_seeds);
    }
    std::printf("\n");
  }
  return 0;
}
