#pragma once

// Shared helpers for the table-regeneration benches (Tables 1 and 2 of the
// paper). These binaries print the same row layout as the paper so
// paper-vs-measured comparison (EXPERIMENTS.md) is a visual diff.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/window.hpp"
#include "obs/metrics.hpp"
#include "rqfp/cost.hpp"

namespace rcgp::benchtool {

/// Environment-variable override with a default (all benches are budgeted
/// so a full run finishes on a laptop; raise the env vars to approach the
/// paper's 5*10^7-generation budget).
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtod(v, nullptr) : fallback;
}

struct Row {
  std::string name;
  unsigned n_pi = 0;
  unsigned n_po = 0;
  unsigned g_lb = 0;
  rqfp::Cost init;
  rqfp::Cost rcgp;
  rqfp::Cost polished; // RCGP + exact window polish (our extension)
  double rcgp_seconds = 0.0;
  bool rcgp_equivalent = false;
};

/// Runs initialization + RCGP on one named benchmark. `mu` <= 0 selects
/// the paper's mu = 1. When `polish` is set, the RCGP result is
/// additionally refined with SAT-exact window polishing (our extension;
/// the `polished` field of the row).
inline Row run_flow_row(const std::string& name, std::uint64_t generations,
                        std::uint64_t seed = 2024, double mu = 1.0,
                        bool polish = false) {
  const auto b = benchmarks::get(name);
  Row row;
  row.name = name;
  row.n_pi = b.num_pis;
  row.n_po = b.num_pos;
  row.g_lb = rqfp::garbage_lower_bound(b.num_pis, b.num_pos);

  core::FlowOptions opt;
  opt.evolve.generations = generations;
  opt.evolve.lambda = 4;
  opt.evolve.mutation.mu = mu > 0 ? mu : 1.0;
  opt.evolve.seed = seed;
  // λ-parallel offspring evaluation; results are bit-identical for any
  // thread count (docs/PARALLELISM.md), so this only changes wall time.
  // 0 = hardware concurrency.
  opt.evolve.threads = static_cast<unsigned>(env_u64("RCGP_THREADS", 0));
  const auto r = core::synthesize(b.spec, opt);
  row.init = r.initial_cost;
  row.rcgp = r.optimized_cost;
  row.rcgp_seconds = r.evolution.seconds;
  row.rcgp_equivalent = cec::sim_check(r.optimized, b.spec).all_match;
  row.polished = row.rcgp;
  if (polish) {
    const auto refined = core::exact_polish(r.optimized);
    row.polished = rqfp::cost_of(refined);
    row.rcgp_equivalent =
        row.rcgp_equivalent && cec::sim_check(refined, b.spec).all_match;
  }
  return row;
}

inline void print_header(bool with_exact) {
  std::printf("%-12s | %4s %4s %4s | %5s %5s %6s %4s %5s |", "Testcase",
              "npi", "npo", "glb", "n_r", "n_b", "JJs", "n_d", "n_g");
  if (with_exact) {
    std::printf(" %5s %5s %9s |", "n_r", "n_g", "T(s)");
  }
  std::printf(" %5s %5s %6s %4s %5s %9s %3s\n", "n_r", "n_b", "JJs", "n_d",
              "n_g", "T(s)", "eq");
  std::printf("%-12s | %15s | %29s |", "", "Original", "Initialization");
  if (with_exact) {
    std::printf(" %21s |", "Exact synthesis");
  }
  std::printf(" %37s\n", "RCGP");
}

inline void print_init_cols(const Row& row) {
  std::printf("%-12s | %4u %4u %4u | %5u %5u %6u %4u %5u |",
              row.name.c_str(), row.n_pi, row.n_po, row.g_lb, row.init.n_r,
              row.init.n_b, row.init.jjs, row.init.n_d, row.init.n_g);
}

inline void print_rcgp_cols(const Row& row) {
  std::printf(" %5u %5u %6u %4u %5u %9.2f %3s\n", row.rcgp.n_r, row.rcgp.n_b,
              row.rcgp.jjs, row.rcgp.n_d, row.rcgp.n_g, row.rcgp_seconds,
              row.rcgp_equivalent ? "yes" : "NO");
}

/// Dumps the process-wide metrics registry (evolve/sat/cec counters and
/// per-phase wall times accumulated across every row) as JSON when the
/// named environment variable points at a path. Lets CI and profiling
/// runs capture `RCGP_METRICS_OUT=table1.json ./bench_table1` without
/// per-driver plumbing.
inline void maybe_write_metrics(const char* env_name) {
  const char* path = std::getenv(env_name);
  if (!path || !*path) {
    return;
  }
  if (obs::registry().write_json(path)) {
    std::printf("wrote metrics to %s\n", path);
  } else {
    std::fprintf(stderr, "failed to write metrics to %s\n", path);
  }
}

/// Aggregate reduction (paper reports averages of per-row reductions).
struct Reduction {
  double sum = 0.0;
  int count = 0;
  void add(double before, double after) {
    if (before > 0) {
      sum += (before - after) / before;
      ++count;
    }
  }
  double percent() const { return count ? 100.0 * sum / count : 0.0; }
};

} // namespace rcgp::benchtool
