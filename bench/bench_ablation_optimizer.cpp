// Ablation D (ours): optimizer comparison at a fixed evaluation budget —
// the paper's (1+lambda) evolutionary strategy vs simulated annealing vs
// multistart ES vs the hybrid ES + SAT-exact window polish.
//
// Env overrides: RCGP_AB_GENERATIONS (default 15000), RCGP_AB_SEEDS (3).

#include <cstdio>

#include "core/optimizer.hpp"
#include "core/window.hpp"
#include "table_common.hpp"

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t generations = env_u64("RCGP_AB_GENERATIONS", 15000);
  const std::uint64_t num_seeds = env_u64("RCGP_AB_SEEDS", 3);
  // The ES evaluates lambda=4 offspring per generation; annealing one.
  const std::uint64_t eval_budget = generations * 4;

  std::printf("Ablation: optimizer comparison "
              "(~%llu fitness evaluations per run, %llu seeds)\n\n",
              static_cast<unsigned long long>(eval_budget),
              static_cast<unsigned long long>(num_seeds));
  std::printf("%-12s %-16s | %8s %8s %8s\n", "testcase", "optimizer", "n_r",
              "n_g", "T(s)");

  for (const char* name : {"decoder_2_4", "full_adder", "graycode4"}) {
    const auto b = benchmarks::get(name);
    core::FlowOptions probe;
    probe.run_cgp = false;
    const auto init = core::synthesize(b.spec, probe).initial;

    struct Acc {
      double r = 0;
      double g = 0;
      double t = 0;
    };
    auto report = [&](const char* label, const Acc& acc) {
      std::printf("%-12s %-16s | %8.2f %8.2f %8.2f\n", name, label,
                  acc.r / num_seeds, acc.g / num_seeds, acc.t / num_seeds);
    };

    Acc es;
    Acc sa;
    Acc multi;
    Acc hybrid;
    for (std::uint64_t s = 0; s < num_seeds; ++s) {
      // All four optimizers run through the unified core::Optimizer
      // facade, which also gives the ES variants λ-parallel evaluation
      // (RCGP_THREADS env, 0 = hardware concurrency).
      core::OptimizerOptions eo;
      eo.evolve.generations = generations;
      eo.evolve.seed = 7000 + s;
      eo.evolve.threads =
          static_cast<unsigned>(env_u64("RCGP_THREADS", 0));
      const auto res_es = core::Optimizer(eo).run(init, b.spec);
      es.r += res_es.best_fitness.n_r;
      es.g += res_es.best_fitness.n_g;
      es.t += res_es.seconds;

      core::OptimizerOptions so;
      so.algorithm = core::Algorithm::kAnneal;
      so.anneal.steps = eval_budget;
      so.anneal.seed = 7000 + s;
      so.anneal.mutation.mu = 0.2;
      const auto res_sa = core::Optimizer(so).run(init, b.spec);
      sa.r += res_sa.best_fitness.n_r;
      sa.g += res_sa.best_fitness.n_g;
      sa.t += res_sa.seconds;

      core::OptimizerOptions mo = eo;
      mo.algorithm = core::Algorithm::kMultistart;
      mo.restarts = 4;
      const auto res_multi = core::Optimizer(mo).run(init, b.spec);
      multi.r += res_multi.best_fitness.n_r;
      multi.g += res_multi.best_fitness.n_g;
      multi.t += res_multi.seconds;

      const auto polished = core::exact_polish(res_es.best);
      const auto cost = rqfp::cost_of(polished);
      hybrid.r += cost.n_r;
      hybrid.g += cost.n_g;
      hybrid.t += res_es.seconds;
    }
    report("(1+4) ES (paper)", es);
    report("annealing", sa);
    report("multistart x4", multi);
    report("ES + polish", hybrid);
    std::printf("\n");
  }
  return 0;
}
