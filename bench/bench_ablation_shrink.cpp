// Ablation B: the shrink step (§3.2.3) and the strict PO swap rule.
// Shrink removes useless gates from the chromosome after every accepted
// offspring; disabling it leaves the genotype at its initial length and
// the search space correspondingly larger.
//
// Env overrides: RCGP_AB_GENERATIONS (default 20000), RCGP_AB_SEEDS (3).

#include <cstdio>

#include "core/evolve.hpp"
#include "table_common.hpp"

namespace {

struct Variant {
  const char* label;
  bool disable_shrink;
  bool strict_po;
};

} // namespace

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t generations = env_u64("RCGP_AB_GENERATIONS", 20000);
  const std::uint64_t num_seeds = env_u64("RCGP_AB_SEEDS", 3);

  const Variant variants[] = {
      {"full (paper)", false, true},
      {"no shrink", true, true},
      {"permissive PO", false, false},
  };

  std::printf("Ablation: shrink and PO-swap variants "
              "(%llu generations, %llu seeds)\n\n",
              static_cast<unsigned long long>(generations),
              static_cast<unsigned long long>(num_seeds));
  std::printf("%-12s %-14s | %8s %8s %10s\n", "testcase", "variant", "n_r",
              "n_g", "legal");

  for (const char* name : {"decoder_2_4", "ham3", "full_adder"}) {
    const auto b = benchmarks::get(name);
    for (const Variant& v : variants) {
      double sum_r = 0;
      double sum_g = 0;
      int legal = 0;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        core::FlowOptions opt;
        opt.evolve.generations = generations;
        opt.evolve.disable_shrink = v.disable_shrink;
        opt.evolve.mutation.strict_po_swap = v.strict_po;
        opt.evolve.seed = 2000 + s;
        const auto r = core::synthesize(b.spec, opt);
        sum_r += r.optimized_cost.n_r;
        sum_g += r.optimized_cost.n_g;
        if (r.optimized.validate().empty()) {
          ++legal;
        }
      }
      std::printf("%-12s %-14s | %8.2f %8.2f %7d/%llu\n", name, v.label,
                  sum_r / num_seeds, sum_g / num_seeds, legal,
                  static_cast<unsigned long long>(num_seeds));
    }
    std::printf("\n");
  }
  std::printf("('legal' counts runs whose final netlist satisfies the "
              "single fan-out check; the permissive-PO variant mirrors the "
              "paper's direct PO update and may violate it transiently)\n");
  return 0;
}
