// Regenerates Table 1 of the paper: small RevLib circuits through
// (a) the heuristic initialization baseline, (b) SAT-based exact synthesis
// ([15]'s role; '\' marks a budget timeout, as in the paper), and (c) RCGP.
//
// Budgets (override via environment):
//   RCGP_T1_GENERATIONS  CGP generations per circuit   (default 150000)
//   RCGP_T1_EXACT_TIME   exact-synthesis seconds/case  (default 25)
//   RCGP_T1_SEED         CGP seed                      (default 2024)
//   RCGP_METRICS_OUT     path for a metrics-registry JSON dump (optional)

#include <cstdio>

#include "exact/exact_rqfp.hpp"
#include "table_common.hpp"

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t generations = env_u64("RCGP_T1_GENERATIONS", 300000);
  const double exact_time = env_f64("RCGP_T1_EXACT_TIME", 25.0);
  const std::uint64_t seed = env_u64("RCGP_T1_SEED", 2024);

  std::printf("Table 1: small RevLib circuits "
              "(CGP budget %llu generations, exact budget %.0fs/case)\n\n",
              static_cast<unsigned long long>(generations), exact_time);
  print_header(/*with_exact=*/true);

  Reduction gates_vs_init;
  Reduction jjs_vs_init;
  Reduction garbage_vs_init;
  Reduction gates_polished;
  Reduction garbage_polished;

  for (const auto& name : benchmarks::table1_names()) {
    const Row row =
        run_flow_row(name, generations, seed, /*mu=*/1.0, /*polish=*/true);
    print_init_cols(row);

    // Exact synthesis baseline, budgeted per case.
    const auto b = benchmarks::get(name);
    exact::ExactParams ep;
    ep.max_gates = 8;
    ep.time_limit_seconds = exact_time;
    ep.conflicts_per_call = 4000000;
    const auto ex = exact::exact_synthesize(b.spec, ep);
    if (ex.status == exact::ExactStatus::kSolved) {
      std::printf(" %5u %5u %9.2f |", ex.gates, ex.garbage, ex.seconds);
    } else {
      std::printf(" %5s %5s %9s |", "\\", "\\", "\\");
    }

    std::printf(" %5u %5u %6u %4u %5u %9.2f %3s", row.rcgp.n_r,
                row.rcgp.n_b, row.rcgp.jjs, row.rcgp.n_d, row.rcgp.n_g,
                row.rcgp_seconds, row.rcgp_equivalent ? "yes" : "NO");
    std::printf("  | +polish: n_r=%-3u n_g=%-3u\n", row.polished.n_r,
                row.polished.n_g);

    gates_vs_init.add(row.init.n_r, row.rcgp.n_r);
    jjs_vs_init.add(row.init.jjs, row.rcgp.jjs);
    garbage_vs_init.add(row.init.n_g, row.rcgp.n_g);
    gates_polished.add(row.init.n_r, row.polished.n_r);
    garbage_polished.add(row.init.n_g, row.polished.n_g);
  }

  std::printf("\nAverage reduction vs initialization baseline: "
              "gates %.2f%%, JJs %.2f%%, garbage %.2f%%\n",
              gates_vs_init.percent(), jjs_vs_init.percent(),
              garbage_vs_init.percent());
  std::printf("With SAT-exact window polish (our extension): gates "
              "%.2f%%, garbage %.2f%%\n",
              gates_polished.percent(), garbage_polished.percent());
  std::printf("(paper, N=5*10^7: gates 50.80%%, JJs 43.53%%, garbage "
              "71.55%%; '\\' = exact method exceeded its budget, as it "
              "exceeded 240000s in the paper)\n");
  maybe_write_metrics("RCGP_METRICS_OUT");
  return 0;
}
