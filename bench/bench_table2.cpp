// Regenerates Table 2 of the paper: large RevLib + reversible reciprocal
// circuits. Exact synthesis times out on every row (as in the paper), so
// only Initialization and RCGP columns are computed; the exact column is
// reported as '\' after a short witness budget.
//
// Budgets (override via environment):
//   RCGP_T2_BUDGET      approx offspring-evaluation budget per circuit,
//                       converted into generations by circuit size
//                       (default 40000000 gate-evals)
//   RCGP_T2_EXACT_TIME  exact witness budget in seconds (default 5; set 0
//                       to skip the exact column entirely)
//   RCGP_T2_SEED        CGP seed (default 2024)
//   RCGP_METRICS_OUT    path for a metrics-registry JSON dump (optional)

#include <algorithm>
#include <cstdio>

#include "exact/exact_rqfp.hpp"
#include "table_common.hpp"

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t eval_budget = env_u64("RCGP_T2_BUDGET", 40000000);
  const double exact_time = env_f64("RCGP_T2_EXACT_TIME", 5.0);
  const std::uint64_t seed = env_u64("RCGP_T2_SEED", 2024);

  std::printf("Table 2: large circuits (per-circuit CGP budget "
              "~%llu gate-evaluations)\n\n",
              static_cast<unsigned long long>(eval_budget));
  print_header(/*with_exact=*/false);

  Reduction gates_vs_init;
  Reduction garbage_vs_init;

  for (const auto& name : benchmarks::table2_names()) {
    // Size the generation count to the circuit: constant total work.
    const auto b = benchmarks::get(name);
    core::FlowOptions probe;
    probe.run_cgp = false;
    const auto init_only = core::synthesize(b.spec, probe);
    const std::uint64_t per_gen =
        4ull * std::max<std::uint64_t>(1, init_only.initial_cost.n_r);
    const std::uint64_t generations =
        std::max<std::uint64_t>(500, eval_budget / per_gen);
    // Budget compensation: the paper's mu = 1 mutates ~n_L/2 genes per
    // offspring and relies on 5*10^7 generations to hit the rare small
    // mutations that matter; at laptop budgets a rate of ~12 expected
    // gene changes per offspring dominates (see bench_ablation_mutation).
    const double n_l = 4.0 * init_only.initial_cost.n_r + b.num_pos;
    const double mu = std::min(1.0, 12.0 / n_l);

    const Row row = run_flow_row(name, generations, seed, mu);
    print_init_cols(row);

    if (exact_time > 0) {
      exact::ExactParams ep;
      ep.max_gates = 8;
      ep.time_limit_seconds = exact_time;
      ep.conflicts_per_call = 200000;
      const auto ex = exact::exact_synthesize(b.spec, ep);
      if (ex.status == exact::ExactStatus::kSolved) {
        // Not expected for any Table 2 circuit; print it if it happens.
        std::printf(" [exact: %u gates] ", ex.gates);
      }
    }
    print_rcgp_cols(row);

    gates_vs_init.add(row.init.n_r, row.rcgp.n_r);
    garbage_vs_init.add(row.init.n_g, row.rcgp.n_g);
  }

  std::printf("\nExact synthesis: no feasible solution within budget on any "
              "row ('\\' throughout in the paper at 240000s).\n");
  std::printf("Average reduction vs initialization baseline: gates %.2f%%, "
              "garbage %.2f%%\n",
              gates_vs_init.percent(), garbage_vs_init.percent());
  std::printf("(paper, N=5*10^7: gates 32.38%%, garbage 59.13%%)\n");
  maybe_write_metrics("RCGP_METRICS_OUT");
  return 0;
}
