// Microbenchmark of the incremental cost path (docs/COST_EVAL.md): prices
// a batch of mutated offspring of each Table-1 circuit's initialization
// three ways — the pre-CostCache formulation (remove_dead_gates() copy +
// from-scratch planning, reproduced below), today's cost_of (cache
// machinery, thread-local scratch), and cost_of_delta against a CostCache
// built once — and reports per-evaluation times and the median
// legacy-vs-delta speedup per BufferSchedule. Results are verified equal
// field-for-field before anything is timed.
//
// Budgets (override via environment):
//   RCGP_COST_OFFSPRING  mutated children per circuit    (default 256)
//   RCGP_COST_REPS       timing repetitions (median)     (default 5)
//   RCGP_COST_SEED       mutation RNG seed               (default 2024)
//   RCGP_METRICS_OUT     path for a metrics-registry JSON dump (optional)

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/mutation.hpp"
#include "table_common.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace rcgp;

const char* schedule_name(rqfp::BufferSchedule s) {
  switch (s) {
  case rqfp::BufferSchedule::kAsap:
    return "asap";
  case rqfp::BufferSchedule::kAlap:
    return "alap";
  case rqfp::BufferSchedule::kBest:
    return "best";
  case rqfp::BufferSchedule::kOptimized:
    return "optimized";
  }
  return "?";
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---------------------------------------------------------------------
// The cost evaluation this repository shipped before the CostCache,
// reproduced verbatim as the timing baseline the incremental path is
// measured against: materialize the dead-gate-free copy (PO-name strings
// and all), then count garbage and plan buffers on it from scratch —
// with the historical recursive kBest/kOptimized structure, its repeated
// gate_levels()/depth() passes, per-call vector allocations,
// vector-of-vectors consumer lists, and the O(gates x POs) slope scan.
// ---------------------------------------------------------------------
namespace legacy {

using namespace rcgp::rqfp;

BufferPlan plan_for_levels(const Netlist& net,
                           const std::vector<std::uint32_t>& level,
                           std::uint32_t depth) {
  BufferPlan plan;
  plan.depth = depth;
  plan.gate_edges.assign(net.num_gates(), {0, 0, 0});
  for (std::uint32_t g = 0; g < net.num_gates(); ++g) {
    for (unsigned i = 0; i < 3; ++i) {
      const Port p = net.gate(g).in[i];
      if (net.is_const_port(p)) {
        continue;
      }
      const std::uint32_t src =
          net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
      plan.gate_edges[g][i] = level[g] - 1 - src;
      plan.total += plan.gate_edges[g][i];
    }
  }
  plan.po_edges.assign(net.num_pos(), 0);
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_const_port(p)) {
      continue;
    }
    const std::uint32_t src =
        net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
    plan.po_edges[o] = depth - src;
    plan.total += plan.po_edges[o];
  }
  return plan;
}

BufferPlan plan_optimized(const Netlist& net) {
  const std::uint32_t n = net.num_gates();
  std::vector<std::uint32_t> level = net.gate_levels();
  const std::uint32_t depth = net.depth(); // recomputes gate_levels()
  if (n == 0) {
    return plan_for_levels(net, level, depth);
  }
  std::vector<std::vector<std::uint32_t>> gate_consumers(n);
  std::vector<bool> drives_po(n, false);
  for (std::uint32_t g = 0; g < n; ++g) {
    for (const Port p : net.gate(g).in) {
      if (net.is_gate_port(p)) {
        gate_consumers[net.gate_of_port(p)].push_back(g);
      }
    }
  }
  for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
    const Port p = net.po_at(o);
    if (net.is_gate_port(p)) {
      drives_po[net.gate_of_port(p)] = true;
    }
  }
  for (unsigned round = 0; round < 16; ++round) {
    bool changed = false;
    for (std::uint32_t g = 0; g < n; ++g) {
      std::uint32_t earliest = 1;
      int non_const_inputs = 0;
      for (const Port p : net.gate(g).in) {
        if (net.is_const_port(p)) {
          continue;
        }
        ++non_const_inputs;
        const std::uint32_t src =
            net.is_gate_port(p) ? level[net.gate_of_port(p)] : 0;
        earliest = std::max(earliest, src + 1);
      }
      std::uint32_t latest = drives_po[g] || gate_consumers[g].empty()
                                 ? depth
                                 : 0xFFFFFFFFu;
      for (const auto c : gate_consumers[g]) {
        latest = std::min(latest, level[c] - 1);
      }
      int slope = non_const_inputs;
      slope -= static_cast<int>(gate_consumers[g].size());
      if (drives_po[g]) {
        for (std::uint32_t o = 0; o < net.num_pos(); ++o) {
          if (net.is_gate_port(net.po_at(o)) &&
              net.gate_of_port(net.po_at(o)) == g) {
            --slope;
          }
        }
      }
      const std::uint32_t target = slope > 0 ? earliest
                                   : slope < 0 ? latest
                                               : level[g];
      if (target != level[g] && target >= earliest && target <= latest) {
        level[g] = target;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return plan_for_levels(net, level, depth);
}

BufferPlan plan_buffers(const Netlist& net, BufferSchedule schedule) {
  if (schedule == BufferSchedule::kBest) {
    BufferPlan asap = legacy::plan_buffers(net, BufferSchedule::kAsap);
    BufferPlan alap = legacy::plan_buffers(net, BufferSchedule::kAlap);
    return alap.total < asap.total ? alap : asap;
  }
  if (schedule == BufferSchedule::kOptimized) {
    BufferPlan best = legacy::plan_buffers(net, BufferSchedule::kBest);
    BufferPlan optimized = legacy::plan_optimized(net);
    return optimized.total < best.total ? optimized : best;
  }
  BufferPlan plan;
  const std::uint32_t n = net.num_gates();
  std::vector<std::uint32_t> level = net.gate_levels();
  plan.depth = net.depth(); // recomputes gate_levels()
  if (schedule == BufferSchedule::kAlap && n > 0) {
    std::vector<std::uint32_t> latest(n, 0);
    std::vector<bool> constrained(n, false);
    for (std::uint32_t i = 0; i < net.num_pos(); ++i) {
      const Port p = net.po_at(i);
      if (net.is_gate_port(p)) {
        const std::uint32_t g = net.gate_of_port(p);
        latest[g] = constrained[g] ? std::min(latest[g], plan.depth)
                                   : plan.depth;
        constrained[g] = true;
      }
    }
    for (std::uint32_t g = n; g-- > 0;) {
      const std::uint32_t self = constrained[g] ? latest[g] : level[g];
      for (const Port p : net.gate(g).in) {
        if (!net.is_gate_port(p)) {
          continue;
        }
        const std::uint32_t src = net.gate_of_port(p);
        const std::uint32_t bound = self - 1;
        latest[src] =
            constrained[src] ? std::min(latest[src], bound) : bound;
        constrained[src] = true;
      }
    }
    for (std::uint32_t g = 0; g < n; ++g) {
      if (constrained[g]) {
        level[g] = std::max(level[g], latest[g]);
      }
    }
  }
  BufferPlan filled = plan_for_levels(net, level, plan.depth);
  return filled;
}

Cost cost_of(const Netlist& net, BufferSchedule schedule) {
  const Netlist live = net.remove_dead_gates();
  Cost c;
  c.n_r = live.num_gates();
  c.n_g = live.count_garbage_outputs();
  const BufferPlan plan = legacy::plan_buffers(live, schedule);
  c.n_b = plan.total;
  c.n_d = plan.depth;
  c.jjs = kJjsPerGate * c.n_r + kJjsPerBuffer * c.n_b;
  return c;
}

} // namespace legacy

} // namespace

int main() {
  using namespace rcgp::benchtool;

  const std::uint64_t offspring = env_u64("RCGP_COST_OFFSPRING", 256);
  const std::uint64_t reps = env_u64("RCGP_COST_REPS", 5);
  const std::uint64_t seed = env_u64("RCGP_COST_SEED", 2024);

  constexpr rqfp::BufferSchedule kSchedules[] = {
      rqfp::BufferSchedule::kAsap, rqfp::BufferSchedule::kAlap,
      rqfp::BufferSchedule::kBest, rqfp::BufferSchedule::kOptimized};

  std::printf("Cost evaluation: cost_of vs cost_of_delta "
              "(%llu offspring/circuit, median of %llu reps)\n\n",
              static_cast<unsigned long long>(offspring),
              static_cast<unsigned long long>(reps));
  std::printf("%-14s %5s | %-9s | %11s %10s %10s %8s\n", "circuit", "n_r",
              "schedule", "legacy/eval", "full/eval", "delta/eval",
              "speedup");
  std::printf("%.*s\n", 80,
              "--------------------------------------------------------------"
              "--------------------");

  std::vector<double> optimized_speedups;
  for (const auto& name : benchmarks::table1_names()) {
    const auto b = benchmarks::get(name);
    core::FlowOptions opt;
    opt.run_cgp = false;
    const rqfp::Netlist base = core::synthesize(b.spec, opt).initial;

    // One fixed brood of mutated children per circuit: both paths price
    // exactly the same netlists.
    std::vector<rqfp::Netlist> children(offspring, base);
    for (std::uint64_t k = 0; k < offspring; ++k) {
      util::Rng rng = util::Rng::stream(seed, 0, k);
      core::mutate(children[k], rng, {});
    }

    for (const auto schedule : kSchedules) {
      rqfp::CostCache cache;
      rqfp::build_cost_cache(base, schedule, cache);
      // Correctness first: all three paths must agree on every child.
      for (const auto& child : children) {
        const auto before = legacy::cost_of(child, schedule);
        const auto full = rqfp::cost_of(child, schedule);
        const auto delta = rqfp::cost_of_delta(base, child, cache);
        if (!(full == delta) || !(before == delta)) {
          std::fprintf(stderr,
                       "bench_cost: MISMATCH on %s/%s: legacy {%s} vs "
                       "full {%s} vs delta {%s}\n",
                       name.c_str(), schedule_name(schedule),
                       before.to_string().c_str(), full.to_string().c_str(),
                       delta.to_string().c_str());
          return 1;
        }
      }

      std::vector<double> legacy_s;
      std::vector<double> full_s;
      std::vector<double> delta_s;
      volatile std::uint64_t sink = 0; // keep the costs observable
      for (std::uint64_t r = 0; r < reps; ++r) {
        util::Stopwatch watch;
        for (const auto& child : children) {
          sink += legacy::cost_of(child, schedule).jjs;
        }
        legacy_s.push_back(watch.seconds());
        watch.restart();
        for (const auto& child : children) {
          sink += rqfp::cost_of(child, schedule).jjs;
        }
        full_s.push_back(watch.seconds());
        watch.restart();
        for (const auto& child : children) {
          sink += rqfp::cost_of_delta(base, child, cache).jjs;
        }
        delta_s.push_back(watch.seconds());
      }
      (void)sink;

      const double legacy_med = median(legacy_s);
      const double full_med = median(full_s);
      const double delta_med = median(delta_s);
      const double per = 1e9 / static_cast<double>(offspring);
      const double speedup = delta_med > 0.0 ? legacy_med / delta_med : 0.0;
      std::printf("%-14s %5u | %-9s | %9.0fns %8.0fns %8.0fns %7.2fx\n",
                  name.c_str(), base.num_gates(), schedule_name(schedule),
                  legacy_med * per, full_med * per, delta_med * per, speedup);
      if (schedule == rqfp::BufferSchedule::kOptimized) {
        optimized_speedups.push_back(speedup);
        obs::registry()
            .gauge("bench.cost." + name + ".optimized_speedup")
            .set(speedup);
      }
    }
  }

  const double med_speedup = median(optimized_speedups);
  const double worst_speedup =
      *std::min_element(optimized_speedups.begin(), optimized_speedups.end());
  obs::registry().gauge("bench.cost.optimized_median_speedup").set(med_speedup);
  std::printf("\nkOptimized speedup across Table-1 circuits: "
              "median %.2fx (target >= 2x), worst %.2fx\n",
              med_speedup, worst_speedup);
  maybe_write_metrics("RCGP_METRICS_OUT");
  return 0;
}
