// bench_island — best-cost-vs-wallclock scaling of the island model
// (docs/ISLANDS.md).
//
// For each circuit and each fleet size in {1, 2, 4, 8}, runs an island
// fleet where EVERY island gets the same per-island generation budget.
// A fleet of N islands therefore does N× the search work of a single
// lineage — but since islands advance independently between migrations,
// that work parallelizes across N workers, so the MODELED wall clock at
// full placement is measured_wall / N. The interesting question the JSON
// answers: at equal modeled wall clock, does a wider fleet find a better
// circuit than a single lineage? (Paper Table 1 circuits; the CI smoke
// keeps budgets small — raise the env vars for the real experiment.)
//
//   RCGP_ISLAND_GENERATIONS  per-island generation budget (default 3000)
//   RCGP_ISLAND_SEED         base seed (default 2024)
//   RCGP_ISLAND_CIRCUITS     comma list (default full_adder,decoder_2_4)
//   RCGP_ISLAND_COUNTS       comma list of fleet sizes (default 1,2,4,8)
//   RCGP_ISLAND_MIGRATION    migration interval (default budget/10)
//   RCGP_ISLAND_OUT          output JSON path (default BENCH_island.json)
//   RCGP_METRICS_OUT         optional metrics registry dump

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "table_common.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "island/island.hpp"
#include "obs/json.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace rcgp;

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string piece =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!piece.empty()) {
      out.push_back(piece);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

std::string env_str(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? v : fallback;
}

struct Cell {
  std::string circuit;
  unsigned islands = 0;
  rqfp::Cost best;
  double wall_seconds = 0.0;
  double modeled_parallel_seconds = 0.0;
  bool equivalent = false;
};

} // namespace

int main() {
  const std::uint64_t generations =
      benchtool::env_u64("RCGP_ISLAND_GENERATIONS", 3000);
  const std::uint64_t seed = benchtool::env_u64("RCGP_ISLAND_SEED", 2024);
  const std::uint64_t interval = benchtool::env_u64(
      "RCGP_ISLAND_MIGRATION", std::max<std::uint64_t>(1, generations / 10));
  const std::string out_path =
      env_str("RCGP_ISLAND_OUT", "BENCH_island.json");
  const auto circuits =
      split_csv(env_str("RCGP_ISLAND_CIRCUITS", "full_adder,decoder_2_4"));
  std::vector<unsigned> counts;
  for (const auto& c : split_csv(env_str("RCGP_ISLAND_COUNTS", "1,2,4,8"))) {
    counts.push_back(static_cast<unsigned>(std::stoul(c)));
  }

  std::printf("island scaling: %llu generations/island, migration every "
              "%llu, seed %llu\n\n",
              static_cast<unsigned long long>(generations),
              static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(seed));
  std::printf("%-12s %8s | %5s %5s %6s %5s | %9s %11s %3s\n", "circuit",
              "islands", "n_r", "n_b", "JJs", "n_g", "wall(s)", "modeled(s)",
              "eq");

  std::vector<Cell> cells;
  for (const auto& name : circuits) {
    const auto b = benchmarks::get(name);
    core::FlowOptions init_opt;
    init_opt.run_cgp = false;
    const rqfp::Netlist initial = core::synthesize(b.spec, init_opt).initial;

    for (const unsigned n : counts) {
      core::EvolveParams p;
      p.generations = generations;
      p.seed = seed;
      p.lambda = 4;
      island::FleetOptions fleet;
      fleet.islands = n;
      fleet.topology = core::Topology::kRing;
      fleet.migration_interval = interval;

      util::Stopwatch watch;
      const core::EvolveResult r =
          island::run_fleet(initial, b.spec, p, fleet);
      Cell cell;
      cell.circuit = name;
      cell.islands = n;
      cell.best = rqfp::cost_of(r.best);
      cell.wall_seconds = watch.seconds();
      cell.modeled_parallel_seconds = cell.wall_seconds / n;
      cell.equivalent = cec::sim_check(r.best, b.spec).all_match;
      cells.push_back(cell);
      std::printf("%-12s %8u | %5u %5u %6u %5u | %9.3f %11.3f %3s\n",
                  name.c_str(), n, cell.best.n_r, cell.best.n_b,
                  cell.best.jjs, cell.best.n_g, cell.wall_seconds,
                  cell.modeled_parallel_seconds,
                  cell.equivalent ? "yes" : "NO");
    }
    std::printf("\n");
  }

  obs::json::Writer w;
  w.begin_object();
  w.field("bench", "island");
  w.field("generations_per_island", generations);
  w.field("migration_interval", interval);
  w.field("seed", seed);
  w.field("topology", "ring");
  w.key("cells").begin_array();
  for (const auto& c : cells) {
    w.begin_object();
    w.field("circuit", c.circuit);
    w.field("islands", c.islands);
    w.field("n_r", c.best.n_r);
    w.field("n_b", c.best.n_b);
    w.field("jjs", c.best.jjs);
    w.field("n_d", c.best.n_d);
    w.field("n_g", c.best.n_g);
    w.field("wall_seconds", c.wall_seconds);
    w.field("modeled_parallel_seconds", c.modeled_parallel_seconds);
    w.field("equivalent", c.equivalent);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_island: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("wrote %s (%zu cells)\n", out_path.c_str(), cells.size());
  benchtool::maybe_write_metrics("RCGP_METRICS_OUT");

  for (const auto& c : cells) {
    if (!c.equivalent) {
      std::fprintf(stderr, "bench_island: %s x%u result not equivalent\n",
                   c.circuit.c_str(), c.islands);
      return 1;
    }
  }
  return 0;
}
