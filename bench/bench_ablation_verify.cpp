// Ablation C: fitness-evaluation strategy. The paper combines circuit
// simulation with formal verification (§3.2.1); this bench measures what
// each costs and sweeps the (1+lambda) offspring count.
//
// Env overrides: RCGP_AB_GENERATIONS (default 10000), RCGP_AB_SEEDS (3).

#include <cstdio>

#include "cec/sat_cec.hpp"
#include "core/optimizer.hpp"
#include "table_common.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace rcgp;
  using namespace rcgp::benchtool;

  const std::uint64_t generations = env_u64("RCGP_AB_GENERATIONS", 10000);
  const std::uint64_t num_seeds = env_u64("RCGP_AB_SEEDS", 3);

  std::printf("Ablation: verification strategy and lambda sweep "
              "(%llu generations, %llu seeds)\n\n",
              static_cast<unsigned long long>(generations),
              static_cast<unsigned long long>(num_seeds));

  // Part 1: simulation-only vs simulation+SAT confirmation of accepted
  // improvements.
  std::printf("-- verification strategy --\n");
  std::printf("%-12s %-14s | %8s %8s %8s %10s\n", "testcase", "strategy",
              "n_r", "n_g", "T(s)", "SAT calls");
  for (const char* name : {"decoder_2_4", "c17"}) {
    const auto b = benchmarks::get(name);
    for (const bool sat : {false, true}) {
      double sum_r = 0;
      double sum_g = 0;
      double sum_t = 0;
      std::uint64_t sat_calls = 0;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        core::FlowOptions opt;
        opt.evolve.generations = generations;
        opt.evolve.sat_verify_improvements = sat;
        opt.evolve.seed = 3000 + s;
        const auto r = core::synthesize(b.spec, opt);
        sum_r += r.optimized_cost.n_r;
        sum_g += r.optimized_cost.n_g;
        sum_t += r.evolution.seconds;
        sat_calls += r.evolution.sat_confirmations;
      }
      std::printf("%-12s %-14s | %8.2f %8.2f %8.3f %10llu\n", name,
                  sat ? "sim+SAT" : "sim only", sum_r / num_seeds,
                  sum_g / num_seeds, sum_t / num_seeds,
                  static_cast<unsigned long long>(sat_calls));
    }
  }

  // Part 2: lambda sweep at a fixed offspring budget (generations scale
  // inversely so total evaluations stay constant).
  std::printf("\n-- (1+lambda) sweep at constant evaluation budget --\n");
  std::printf("%-12s %6s | %8s %8s %8s\n", "testcase", "lambda", "n_r",
              "n_g", "T(s)");
  const std::uint64_t eval_budget = generations * 4;
  for (const char* name : {"decoder_2_4", "graycode4"}) {
    const auto b = benchmarks::get(name);
    for (const unsigned lambda : {1u, 2u, 4u, 8u, 16u}) {
      double sum_r = 0;
      double sum_g = 0;
      double sum_t = 0;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        core::FlowOptions opt;
        opt.evolve.lambda = lambda;
        opt.evolve.generations = eval_budget / lambda;
        opt.evolve.seed = 4000 + s;
        const auto r = core::synthesize(b.spec, opt);
        sum_r += r.optimized_cost.n_r;
        sum_g += r.optimized_cost.n_g;
        sum_t += r.evolution.seconds;
      }
      std::printf("%-12s %6u | %8.2f %8.2f %8.3f\n", name, lambda,
                  sum_r / num_seeds, sum_g / num_seeds, sum_t / num_seeds);
    }
    std::printf("\n");
  }

  // Part 2b: restart sweep (our extension) at constant total budget.
  std::printf("-- multistart sweep at constant total budget --\n");
  std::printf("%-12s %8s | %8s %8s\n", "testcase", "restarts", "n_r", "n_g");
  for (const char* name : {"decoder_2_4", "full_adder"}) {
    const auto b = benchmarks::get(name);
    core::FlowOptions probe;
    probe.run_cgp = false;
    const auto init = core::synthesize(b.spec, probe).initial;
    for (const unsigned restarts : {1u, 2u, 4u, 8u}) {
      double sum_r = 0;
      double sum_g = 0;
      for (std::uint64_t s = 0; s < num_seeds; ++s) {
        core::OptimizerOptions oo;
        oo.algorithm = core::Algorithm::kMultistart;
        oo.restarts = restarts;
        oo.evolve.generations = generations * 4;
        oo.evolve.seed = 5000 + s;
        const auto r = core::Optimizer(oo).run(init, b.spec);
        sum_r += r.best_fitness.n_r;
        sum_g += r.best_fitness.n_g;
      }
      std::printf("%-12s %8u | %8.2f %8.2f\n", name, restarts,
                  sum_r / num_seeds, sum_g / num_seeds);
    }
    std::printf("\n");
  }

  // Part 3: raw cost of one SAT equivalence proof vs one exhaustive
  // simulation on a mid-size netlist.
  std::printf("-- single-check microcost (graycode4 final circuit) --\n");
  {
    const auto b = benchmarks::get("graycode4");
    core::FlowOptions opt;
    opt.evolve.generations = generations;
    const auto r = core::synthesize(b.spec, opt);
    util::Stopwatch w;
    for (int i = 0; i < 1000; ++i) {
      (void)cec::sim_check(r.optimized, b.spec);
    }
    const double sim_us = w.seconds() * 1e3; // ms per 1000 = us each
    w.restart();
    for (int i = 0; i < 50; ++i) {
      (void)cec::sat_check(r.optimized, b.spec);
    }
    const double sat_us = w.seconds() * 1e6 / 50;
    std::printf("exhaustive simulation: %.1f us/check, SAT proof: %.1f "
                "us/check\n",
                sim_us, sat_us);
  }
  return 0;
}
