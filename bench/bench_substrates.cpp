// Micro-benchmarks of the substrates RCGP is built on: truth-table ops,
// SAT solving, AIG rewriting, RQFP simulation, mutation, and fitness.

#include <benchmark/benchmark.h>

#include "aig/resyn.hpp"
#include "benchmarks/benchmarks.hpp"
#include "cec/sat_cec.hpp"
#include "cec/sim_cec.hpp"
#include "core/flow.hpp"
#include "core/mutation.hpp"
#include "rqfp/simulate.hpp"
#include "sat/cnf.hpp"
#include "tt/isop.hpp"
#include "tt/npn.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcgp;

tt::TruthTable random_table(unsigned vars, util::Rng& rng) {
  tt::TruthTable t(vars);
  for (std::size_t w = 0; w < t.num_words(); ++w) {
    t.set_word(w, rng.next());
  }
  return t;
}

void BM_TruthTableAnd(benchmark::State& state) {
  util::Rng rng(1);
  const auto a = random_table(static_cast<unsigned>(state.range(0)), rng);
  const auto b = random_table(static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
}
BENCHMARK(BM_TruthTableAnd)->Arg(6)->Arg(10)->Arg(14);

void BM_TruthTableMajority(benchmark::State& state) {
  util::Rng rng(2);
  const auto a = random_table(static_cast<unsigned>(state.range(0)), rng);
  const auto b = random_table(static_cast<unsigned>(state.range(0)), rng);
  const auto c = random_table(static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tt::TruthTable::majority(a, b, c));
  }
}
BENCHMARK(BM_TruthTableMajority)->Arg(6)->Arg(10);

void BM_NpnCanonize4(benchmark::State& state) {
  util::Rng rng(3);
  const auto f = random_table(4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tt::npn_canonize(f));
  }
}
BENCHMARK(BM_NpnCanonize4);

void BM_Isop(benchmark::State& state) {
  util::Rng rng(4);
  const auto f = random_table(static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tt::isop(f));
  }
}
BENCHMARK(BM_Isop)->Arg(4)->Arg(8);

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    const int pigeons = holes + 1;
    std::vector<std::vector<sat::Lit>> x(pigeons,
                                         std::vector<sat::Lit>(holes));
    for (auto& row : x) {
      for (auto& l : row) {
        l = sat::Lit(s.new_var(), false);
      }
    }
    for (int p = 0; p < pigeons; ++p) {
      s.add_clause(std::span<const sat::Lit>(x[p]));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.add_clause({~x[p1][h], ~x[p2][h]});
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(7);

void BM_Resyn2(benchmark::State& state) {
  const auto b = benchmarks::get("intdiv6");
  const auto net = core::aig_from_tables(b.spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::resyn2(net));
  }
}
BENCHMARK(BM_Resyn2);

void BM_RqfpSimulateLive(benchmark::State& state) {
  const auto b = benchmarks::get("intdiv6");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto init = core::synthesize(b.spec, opt).initial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rqfp::simulate_live(init));
  }
}
BENCHMARK(BM_RqfpSimulateLive);

void BM_MutateOffspring(benchmark::State& state) {
  const auto b = benchmarks::get("intdiv6");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto init = core::synthesize(b.spec, opt).initial;
  util::Rng rng(5);
  for (auto _ : state) {
    auto child = init;
    core::mutate(child, rng, {});
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_MutateOffspring);

void BM_FitnessEvaluation(benchmark::State& state) {
  const auto b = benchmarks::get("intdiv6");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto init = core::synthesize(b.spec, opt).initial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate(init, b.spec));
  }
}
BENCHMARK(BM_FitnessEvaluation);

void BM_SatCecProof(benchmark::State& state) {
  const auto b = benchmarks::get("graycode4");
  core::FlowOptions opt;
  opt.run_cgp = false;
  const auto init = core::synthesize(b.spec, opt).initial;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cec::sat_check(init, b.spec));
  }
}
BENCHMARK(BM_SatCecProof);

} // namespace

BENCHMARK_MAIN();
