// Microbenchmark of the SIMD simulation kernels (docs/SIMD.md): for every
// tier this host can run, first asserts bit-identity against the scalar
// reference on randomized buffers (including ragged tail lengths), then
// times the gate3 / maj3 / and2 / xor_popcount kernels and reports
// words/second per tier plus the speedup over scalar. Identity is checked
// BEFORE anything is timed; any mismatch prints the offending kernel and
// exits nonzero, so a broken vector tier can never post a number.
//
// Publishes through the metrics registry (RCGP_METRICS_OUT dumps JSON,
// which CI uploads as BENCH_sim.json):
//   sim.simd_width            vector width in bits of the best tier
//   sim.words_per_second      gate3 throughput of the best tier
//   sim.words_per_second.<tier>  per-tier gate3 throughput
//
// Budgets (override via environment):
//   RCGP_SIM_WORDS  words per operand buffer   (default 1024)
//   RCGP_SIM_REPS   timing repetitions (best)  (default 7)
//
// The default operand is 1024 words — the truth table of a 16-PI spec and
// comfortably cache-resident, like the hot-path tables the CGP loop
// simulates. Much larger buffers (say 1 << 16 words) spill L2 and measure
// memory bandwidth instead of the kernels; that regime is reachable via
// RCGP_SIM_WORDS when it is the one of interest.

#include <cstdio>
#include <string>
#include <vector>

#include "rqfp/simd.hpp"
#include "table_common.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace rcgp;
using rqfp::simd::Kernels;
using rqfp::simd::Tier;

std::vector<std::uint64_t> random_words(util::Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (auto& w : v) {
    w = rng.next();
  }
  return v;
}

struct Buffers {
  std::vector<std::uint64_t> a, b, c;
  std::vector<std::uint64_t> o0, o1, o2;
  std::vector<std::uint64_t> r0, r1, r2; // scalar reference outputs
};

/// Every ragged length the block kernels can branch on: empty, sub-block,
/// one word short of / exactly / past each vector width.
std::vector<std::size_t> tail_lengths(std::size_t n) {
  std::vector<std::size_t> lens{0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 33};
  lens.push_back(n);
  if (n > 5) {
    lens.push_back(n - 5);
  }
  std::vector<std::size_t> ok;
  for (const auto l : lens) {
    if (l <= n) {
      ok.push_back(l);
    }
  }
  return ok;
}

bool check_tier(const Kernels& scalar, const Kernels& tier,
                std::string_view tier_name, Buffers& buf, util::Rng& rng) {
  const std::size_t n = buf.a.size();
  bool ok = true;
  const auto fail = [&](const char* kernel, std::size_t len) {
    std::printf("IDENTITY FAILURE: %s tier '%.*s' diverges from scalar at "
                "length %zu\n",
                kernel, static_cast<int>(tier_name.size()), tier_name.data(),
                len);
    ok = false;
  };
  for (const std::size_t len : tail_lengths(n)) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto config = static_cast<std::uint16_t>(rng.next() & 0x1FF);
      scalar.gate3(config, buf.a.data(), buf.b.data(), buf.c.data(),
                   buf.r0.data(), buf.r1.data(), buf.r2.data(), len);
      tier.gate3(config, buf.a.data(), buf.b.data(), buf.c.data(),
                 buf.o0.data(), buf.o1.data(), buf.o2.data(), len);
      if (!std::equal(buf.r0.begin(), buf.r0.begin() + len, buf.o0.begin()) ||
          !std::equal(buf.r1.begin(), buf.r1.begin() + len, buf.o1.begin()) ||
          !std::equal(buf.r2.begin(), buf.r2.begin() + len, buf.o2.begin())) {
        fail("gate3", len);
      }
      const std::uint64_t ma = rng.next() & 1 ? ~std::uint64_t{0} : 0;
      const std::uint64_t mb = rng.next() & 1 ? ~std::uint64_t{0} : 0;
      const std::uint64_t mc = rng.next() & 1 ? ~std::uint64_t{0} : 0;
      scalar.maj3(buf.a.data(), ma, buf.b.data(), mb, buf.c.data(), mc,
                  buf.r0.data(), len);
      tier.maj3(buf.a.data(), ma, buf.b.data(), mb, buf.c.data(), mc,
                buf.o0.data(), len);
      if (!std::equal(buf.r0.begin(), buf.r0.begin() + len, buf.o0.begin())) {
        fail("maj3", len);
      }
      scalar.and2(buf.a.data(), ma, buf.b.data(), mb, buf.r0.data(), len);
      tier.and2(buf.a.data(), ma, buf.b.data(), mb, buf.o0.data(), len);
      if (!std::equal(buf.r0.begin(), buf.r0.begin() + len, buf.o0.begin())) {
        fail("and2", len);
      }
      if (scalar.xor_popcount(buf.a.data(), buf.b.data(), len) !=
          tier.xor_popcount(buf.a.data(), buf.b.data(), len)) {
        fail("xor_popcount", len);
      }
    }
  }
  return ok;
}

/// Best-of-reps seconds for `reps` timed runs of fn().
template <typename Fn>
double best_seconds(unsigned reps, Fn&& fn) {
  double best = 1e300;
  for (unsigned r = 0; r < reps; ++r) {
    util::Stopwatch watch;
    fn();
    const double s = watch.seconds();
    if (s < best) {
      best = s;
    }
  }
  return best;
}

} // namespace

int main() {
  const std::size_t words = benchtool::env_u64("RCGP_SIM_WORDS", 1 << 10);
  const unsigned reps =
      static_cast<unsigned>(benchtool::env_u64("RCGP_SIM_REPS", 7));
  util::Rng rng(7);

  Buffers buf;
  buf.a = random_words(rng, words);
  buf.b = random_words(rng, words);
  buf.c = random_words(rng, words);
  buf.o0.assign(words, 0);
  buf.o1.assign(words, 0);
  buf.o2.assign(words, 0);
  buf.r0.assign(words, 0);
  buf.r1.assign(words, 0);
  buf.r2.assign(words, 0);

  const auto& tiers = rqfp::simd::available_tiers();
  const Kernels& scalar = rqfp::simd::kernels(Tier::kScalar);

  // 1. Bit-identity gate: every available tier against scalar.
  bool all_identical = true;
  for (const Tier t : tiers) {
    if (!check_tier(scalar, rqfp::simd::kernels(t), rqfp::simd::to_string(t),
                    buf, rng)) {
      all_identical = false;
    }
  }
  if (!all_identical) {
    std::printf("bit-identity FAILED — refusing to time broken kernels\n");
    return 1;
  }
  std::printf("bit-identity: all %zu tier(s) match scalar\n", tiers.size());

  // 2. Throughput per tier. gate3 is the hot kernel (3 outputs per call),
  // so words/second counts the 3 * n output words it produces.
  const unsigned inner = 16;
  double scalar_rate = 0.0;
  double best_rate = 0.0;
  Tier best_tier = Tier::kScalar;
  std::printf("%-8s %8s %16s %9s\n", "tier", "width", "gate3 words/s",
              "speedup");
  for (const Tier t : tiers) {
    const Kernels& k = rqfp::simd::kernels(t);
    const double secs = best_seconds(reps, [&] {
      for (unsigned i = 0; i < inner; ++i) {
        k.gate3(static_cast<std::uint16_t>(0x1A4 + i), buf.a.data(),
                buf.b.data(), buf.c.data(), buf.o0.data(), buf.o1.data(),
                buf.o2.data(), words);
      }
    });
    const double rate =
        secs > 0.0 ? 3.0 * static_cast<double>(words) * inner / secs : 0.0;
    if (t == Tier::kScalar) {
      scalar_rate = rate;
    }
    if (rate >= best_rate) {
      best_rate = rate;
      best_tier = t;
    }
    obs::registry()
        .gauge("sim.words_per_second." +
               std::string(rqfp::simd::to_string(t)))
        .set(rate);
    std::printf("%-8.*s %7ub %16.3e %8.2fx\n",
                static_cast<int>(rqfp::simd::to_string(t).size()),
                rqfp::simd::to_string(t).data(), rqfp::simd::width_bits(t),
                rate, scalar_rate > 0.0 ? rate / scalar_rate : 0.0);
  }
  obs::registry().gauge("sim.words_per_second").set(best_rate);
  obs::registry()
      .gauge("sim.simd_width")
      .set(rqfp::simd::width_bits(best_tier));
  std::printf("best tier: %.*s (%.2fx over scalar)\n",
              static_cast<int>(rqfp::simd::to_string(best_tier).size()),
              rqfp::simd::to_string(best_tier).data(),
              scalar_rate > 0.0 ? best_rate / scalar_rate : 0.0);

  benchtool::maybe_write_metrics("RCGP_METRICS_OUT");
  return 0;
}
